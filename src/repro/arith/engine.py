"""The approximate execution engine.

An :class:`ApproxEngine` executes the additive kernels of an iterative
method *through* a bit-level adder model: float operands are quantized to
a :class:`~repro.arith.fixed.FixedPointFormat`, every elementary addition
is performed by the configured adder (vectorized), and the result is
decoded back to floats.  Every elementary addition is charged to an
:class:`EnergyLedger`, which is how the experiments obtain the paper's
"energy consumption on total approximate parts".

Multiplications are performed exactly in floating point: the paper's
platform approximates the adders only (Table 2, "Adder Impact"), and the
dot-product / matrix-vector kernels below therefore approximate the
*accumulation*, which is where approximate adders bite in practice.

Reductions use a balanced binary tree, mirroring a hardware adder-tree
reduction unit; ``n`` summands cost exactly ``n - 1`` elementary
additions per output lane regardless of tree shape.

Fixed-point residency
---------------------
Every public kernel accepts a ``resident=True`` keyword to return a
:class:`ResidentVector` — the raw fixed-point words plus their format —
instead of decoded floats, and accepts :class:`ResidentVector` operands
wherever it accepts float arrays.  Chained kernels (``sub(rhs,
matvec(A, x, resident=True))`` and friends) then encode once on entry
and decode once on exit instead of round-tripping through floats at
every step.  Because ``encode(decode(w)) == w`` for every representable
word at the supported widths, residency changes *no results and no
energy accounting* — it only removes redundant conversions.  Setting
``fast_path=False`` (or flipping :attr:`ApproxEngine.default_fast_path`)
restores the literal pre-residency execution, which the perf benchmarks
use as their baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.fixed import FixedPointFormat
from repro.arith.modes import ApproxMode
from repro.hardware import bitops


class ResidentVector:
    """Fixed-point words kept resident in the datapath between kernels.

    A thin, immutable-by-convention wrapper pairing an ``int64`` word
    array with the :class:`~repro.arith.fixed.FixedPointFormat` it is
    encoded in.  Engines hand these out when a kernel is called with
    ``resident=True`` and accept them as operands, skipping the
    decode/encode round-trip between chained operations.

    Attributes:
        words: the fixed-point words (``int64``, any shape).
        fmt: the format the words are encoded in.
    """

    __slots__ = ("words", "fmt", "_bounds")

    def __init__(
        self,
        words: np.ndarray,
        fmt: FixedPointFormat,
        bounds: tuple[int, int] | None = None,
    ):
        self.words = np.asarray(words, dtype=np.int64)
        self.fmt = fmt
        self._bounds = bounds

    @property
    def shape(self) -> tuple[int, ...]:
        return self.words.shape

    @property
    def size(self) -> int:
        return int(self.words.size)

    def bounds(self) -> tuple[int, int] | None:
        """Cached ``(min, max)`` of the words; ``None`` when empty."""
        if self._bounds is None and self.words.size:
            self._bounds = (int(self.words.min()), int(self.words.max()))
        return self._bounds

    def decode(self) -> np.ndarray:
        """The float values these words represent."""
        return self.fmt.decode(self.words)

    def __array__(self, dtype=None, copy=None):
        decoded = self.decode()
        return decoded if dtype is None else decoded.astype(dtype)

    def __repr__(self) -> str:
        return f"ResidentVector(shape={self.words.shape}, fmt={self.fmt.describe()})"


@dataclass
class EnergyLedger:
    """Accumulates elementary-addition counts and energy, per mode.

    Attributes:
        adds: total elementary additions executed.
        energy: total energy units charged.
        adds_by_mode: per-mode addition counts.
        energy_by_mode: per-mode energy totals.
        observer: optional observability hook (duck-typed
            :class:`repro.obs.observer.Observer`); every charge is
            forwarded to its ``on_charge`` so traced runs see where
            energy goes without the ledger depending on the obs
            package.  Excluded from equality and snapshots.
    """

    adds: int = 0
    energy: float = 0.0
    adds_by_mode: dict[str, int] = field(default_factory=dict)
    energy_by_mode: dict[str, float] = field(default_factory=dict)
    observer: object | None = field(default=None, compare=False, repr=False)

    def charge(self, mode_name: str, n_adds: int, energy_per_add: float) -> None:
        """Record ``n_adds`` elementary additions on mode ``mode_name``."""
        if n_adds < 0:
            raise ValueError(f"n_adds must be >= 0, got {n_adds}")
        cost = n_adds * energy_per_add
        self.adds += n_adds
        self.energy += cost
        self.adds_by_mode[mode_name] = self.adds_by_mode.get(mode_name, 0) + n_adds
        self.energy_by_mode[mode_name] = (
            self.energy_by_mode.get(mode_name, 0.0) + cost
        )
        if self.observer is not None:
            self.observer.on_charge(mode_name, n_adds, cost)

    def reset(self) -> None:
        """Zero every counter."""
        self.adds = 0
        self.energy = 0.0
        self.adds_by_mode.clear()
        self.energy_by_mode.clear()

    def snapshot(self) -> "EnergyLedger":
        """An independent copy (for before/after deltas)."""
        return EnergyLedger(
            adds=self.adds,
            energy=self.energy,
            adds_by_mode=dict(self.adds_by_mode),
            energy_by_mode=dict(self.energy_by_mode),
        )

    def delta_energy(self, earlier: "EnergyLedger") -> float:
        """Energy charged since ``earlier`` was snapshotted."""
        return self.energy - earlier.energy


class ApproxEngine:
    """Executes additive kernels through one approximation mode.

    Args:
        mode: the :class:`~repro.arith.modes.ApproxMode` to execute on.
        fmt: fixed-point format of the datapath.
        ledger: energy ledger to charge; a private one is created when
            omitted.  Several engines (one per mode) typically share a
            single ledger so a run's total energy lands in one place.
        approximate_multiplier: when ``True``, :meth:`mul` runs on an
            array multiplier *composed from the mode's adder* (so adder
            approximation propagates into products, as in silicon)
            instead of exact float multiplication.  Off by default —
            the paper's platform approximates adders only.
        fast_path: enables fixed-point residency and the saturation
            range precheck.  ``None`` (default) takes
            :attr:`default_fast_path`.  ``False`` reproduces the
            pre-residency execution exactly: every saturating add
            recomputes the true sum, reductions concatenate per level,
            and ``resident=True`` requests still return floats.
    """

    #: Class-wide default for ``fast_path`` — flipped to ``False`` by the
    #: perf benchmarks to measure the legacy execution on otherwise
    #: identical code paths.
    default_fast_path: bool = True

    def __init__(
        self,
        mode: ApproxMode,
        fmt: FixedPointFormat,
        ledger: EnergyLedger | None = None,
        approximate_multiplier: bool = False,
        fast_path: bool | None = None,
    ):
        if mode.adder.width != fmt.width:
            raise ValueError(
                f"mode width {mode.adder.width} != format width {fmt.width}"
            )
        self.mode = mode
        self.fmt = fmt
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.approximate_multiplier = bool(approximate_multiplier)
        self.fast_path = (
            self.default_fast_path if fast_path is None else bool(fast_path)
        )
        self._signed_lo, self._signed_hi = bitops.signed_range(fmt.width)
        self._multiplier = None
        self._mul_energy = None

    # ------------------------------------------------------------------
    # Elementary fixed-point plumbing
    # ------------------------------------------------------------------
    def _coerce(self, x) -> tuple[np.ndarray, tuple[int, int] | None]:
        """Operand → ``(words, bounds)``; floats are encoded, residents
        are taken as-is (their cached bounds ride along)."""
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            return x.words, x.bounds()
        return self.fmt.encode(np.asarray(x, dtype=np.float64)), None

    def _check_fmt(self, rv: ResidentVector) -> None:
        if rv.fmt != self.fmt:
            raise ValueError(
                f"resident vector format {rv.fmt.describe()} does not match "
                f"engine format {self.fmt.describe()}"
            )

    def _to_float(self, x) -> np.ndarray:
        """Operand → float array (decoding residents)."""
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            return x.decode()
        return np.asarray(x, dtype=np.float64)

    def _emit(self, words: np.ndarray, resident: bool):
        """Kernel output: resident words on request (fast path only),
        decoded floats otherwise."""
        if resident and self.fast_path:
            return ResidentVector(words, self.fmt)
        return self.fmt.decode(words)

    def _saturation_needed(
        self,
        qa: np.ndarray,
        qb: np.ndarray,
        bounds_a: tuple[int, int] | None,
        bounds_b: tuple[int, int] | None,
    ) -> bool:
        """Whether the saturating output stage must recompute true sums.

        On the fast path a cheap range precheck (operand min/max, cached
        on residents) proves most adds cannot leave the representable
        range, skipping the int64 true-sum recompute entirely.  With
        ``fast_path=False`` this always answers ``True``, reproducing
        the unconditional pre-residency recompute.
        """
        if not self.fast_path:
            return True
        if qa.size == 0 or qb.size == 0:
            return False
        if bounds_a is None:
            bounds_a = (int(qa.min()), int(qa.max()))
        if bounds_b is None:
            bounds_b = (int(qb.min()), int(qb.max()))
        return (
            bounds_a[0] + bounds_b[0] < self._signed_lo
            or bounds_a[1] + bounds_b[1] > self._signed_hi
        )

    def _add_words(
        self,
        qa: np.ndarray,
        qb: np.ndarray,
        bounds_a: tuple[int, int] | None = None,
        bounds_b: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Add fixed-point words through the mode's adder, with overflow
        handling and energy charging."""
        out = self.mode.adder.add_signed(qa, qb)
        if self.fmt.overflow == "saturate" and self._saturation_needed(
            qa, qb, bounds_a, bounds_b
        ):
            # A saturating output stage: when the *true* sum leaves the
            # representable range, clamp instead of trusting the wrapped
            # (sign-flipped) approximate word.
            true = qa.astype(np.int64) + qb.astype(np.int64)
            lo, hi = self._signed_lo, self._signed_hi
            overflowed = (true < lo) | (true > hi)
            if np.any(overflowed):
                out = np.where(overflowed, np.clip(true, lo, hi), out)
        n = int(np.broadcast(qa, qb).size)
        self.ledger.charge(self.mode.name, n, self.mode.energy_per_add)
        return out

    def _reduce_words(self, q: np.ndarray) -> np.ndarray:
        """Balanced-tree reduction of axis 0 down to a single slice.

        The fast path folds the tree inside one preallocated buffer (no
        per-level ``np.concatenate``); the legacy layout is kept in
        :meth:`_reduce_words_concat`.  Both walk the *same* tree — the
        identical sequence of :meth:`_add_words` calls in the identical
        order — so results and the exact ``n - 1`` adds-per-lane energy
        accounting are unchanged.
        """
        if not self.fast_path:
            return self._reduce_words_concat(q)
        cur = np.asarray(q, dtype=np.int64)
        n = cur.shape[0]
        saturating = self.fmt.overflow == "saturate"
        # One min/max over the level bounds both operand halves for the
        # saturation precheck; carried forward level to level.
        bounds = None
        if saturating and cur.size and n > 1:
            bounds = (int(cur.min()), int(cur.max()))
        buf = None  # allocated only if an odd level needs the tail moved
        while n > 1:
            half = n // 2
            folded = self._add_words(
                cur[:half], cur[half : 2 * half], bounds_a=bounds, bounds_b=bounds
            )
            if n % 2:
                if buf is None:
                    buf = np.empty_like(cur, shape=cur.shape)
                nxt = buf[: half + 1]
                # Tail first: buf may alias cur after an earlier odd
                # level, and index 2*half sits above every write here.
                nxt[half] = cur[2 * half]
                nxt[:half] = folded
                cur = nxt
                n = half + 1
            else:
                cur = folded
                n = half
            if bounds is not None and n > 1:
                bounds = (int(cur[:n].min()), int(cur[:n].max()))
        return cur[0]

    def _reduce_words_concat(self, q: np.ndarray) -> np.ndarray:
        """Pre-residency reduction layout: concatenate the folded half
        with the odd tail at every level.  Retained as the benchmark
        baseline and as an oracle for the fast layout's regression
        tests."""
        while q.shape[0] > 1:
            n = q.shape[0]
            half = n // 2
            folded = self._add_words(q[:half], q[half : 2 * half])
            if n % 2:
                q = np.concatenate([folded, q[2 * half :]], axis=0)
            else:
                q = folded
        return q[0]

    # ------------------------------------------------------------------
    # Public kernels: floats in/out by default, fixed-point-resident
    # operands and outputs on request
    # ------------------------------------------------------------------
    def add(self, a, b, *, resident: bool = False):
        """Elementwise ``a + b`` through the approximate datapath."""
        qa, bounds_a = self._coerce(a)
        qb, bounds_b = self._coerce(b)
        qa, qb = np.broadcast_arrays(qa, qb)
        out = self._add_words(qa, qb, bounds_a=bounds_a, bounds_b=bounds_b)
        return self._emit(out, resident)

    def sub(self, a, b, *, resident: bool = False):
        """Elementwise ``a - b`` (negation is free in two's complement)."""
        if isinstance(b, ResidentVector):
            self._check_fmt(b)
            neg = self.fmt.handle_overflow(-b.words)
            bounds = b.bounds()
            if bounds is not None and bounds[0] > self._signed_lo:
                # Negation flips the range; only the most-negative word
                # needs the overflow policy, so bounds stay exact here.
                bounds = (-bounds[1], -bounds[0])
            else:
                bounds = None
            return self.add(
                a, ResidentVector(neg, self.fmt, bounds), resident=resident
            )
        return self.add(a, -np.asarray(b, dtype=np.float64), resident=resident)

    def scale_add(self, x, alpha: float, d, *, resident: bool = False):
        """The iterative-method update rule ``x + alpha * d`` (Eq. 2).

        The scaling multiply is exact (float); the update addition runs
        on the approximate adder — precisely the paper's "update error"
        injection point.
        """
        return self.add(x, alpha * self._to_float(d), resident=resident)

    def sum(self, x, axis: int | None = None, *, resident: bool = False):
        """Tree-reduce ``x`` along ``axis`` (flattened when ``None``).

        Scalar reductions (``axis=None``) always return a float.
        """
        scalar = axis is None
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            q = x.words
        else:
            q = self.fmt.encode(np.asarray(x, dtype=np.float64))
        if scalar:
            q = q.reshape(-1)
            axis = 0
        if q.shape[axis] == 0:
            out = np.zeros(np.delete(q.shape, axis))
            return float(out) if scalar else self._emit(self.fmt.encode(out), resident)
        reduced = self._reduce_words(np.moveaxis(q, axis, 0))
        if scalar:
            return float(self.fmt.decode(reduced))
        return self._emit(reduced, resident)

    def mean(self, x, axis: int | None = None) -> np.ndarray | float:
        """Approximate-sum mean (the division is exact float)."""
        arr = self._to_float(x)
        count = arr.size if axis is None else arr.shape[axis]
        if count == 0:
            raise ValueError("mean of an empty axis")
        return self.sum(arr, axis=axis) / count

    def dot(self, a, b) -> float:
        """Inner product: exact elementwise products, approximate
        accumulation."""
        a = self._to_float(a).reshape(-1)
        b = self._to_float(b).reshape(-1)
        if a.shape != b.shape:
            raise ValueError(f"dot shape mismatch: {a.shape} vs {b.shape}")
        return float(self.sum(a * b))

    def matvec(self, matrix, vector, *, resident: bool = False):
        """``matrix @ vector`` with approximate row accumulation."""
        matrix = np.asarray(matrix, dtype=np.float64)
        vector = self._to_float(vector).reshape(-1)
        if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
            raise ValueError(
                f"matvec shape mismatch: {matrix.shape} vs {vector.shape}"
            )
        return self.sum(matrix * vector[np.newaxis, :], axis=1, resident=resident)

    def weighted_sum(self, weights, points, *, resident: bool = False):
        """``sum_i weights[i] * points[i]`` over rows of ``points``.

        This is the M-step kernel of GMM/K-means mean updates — the
        computation the paper marks as the adder-impact site ("Mean
        Value" in Table 2).
        """
        weights = self._to_float(weights).reshape(-1)
        points = self._to_float(points)
        if points.shape[0] != weights.shape[0]:
            raise ValueError(
                f"weighted_sum shape mismatch: {weights.shape} vs {points.shape}"
            )
        return self.sum(weights[:, np.newaxis] * points, axis=0, resident=resident)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product.

        Exact float by default (adders-only approximation, as in the
        paper); with ``approximate_multiplier=True`` the product runs on
        a fixed-point array multiplier whose partial products accumulate
        through the mode's adder, and the multiplier's energy is charged
        to the ledger under ``"<mode>:mul"``.

        Fixed-point caveat: a ``width``-bit multiplier cannot hold the
        ``2*width``-bit full product, so — as real narrow datapaths do —
        operands are re-encoded with ``frac_bits // 2`` fractional bits
        each (the product then carries ``frac_bits`` and fits the word
        whenever ``|a*b| <= max_value``), and products that would
        overflow saturate at the output stage.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if not self.approximate_multiplier:
            return a * b
        if self._multiplier is None:
            from repro.hardware.energy import EnergyModel
            from repro.hardware.multipliers import ApproxArrayMultiplier

            self._multiplier = ApproxArrayMultiplier(self.mode.adder)
            model = EnergyModel()
            exact_add = model.cost_of_cells({"fa": self.fmt.width})
            self._mul_energy = (
                model.cost_of_cells(self._multiplier.cell_inventory()) / exact_add
            )
            self._half_fmt = FixedPointFormat(
                self.fmt.width, self.fmt.frac_bits // 2, overflow=self.fmt.overflow
            )
        qa = self._half_fmt.encode(a)
        qb = self._half_fmt.encode(b)
        qa, qb = np.broadcast_arrays(qa, qb)
        raw = self._multiplier.multiply_signed(qa, qb)
        n = int(np.broadcast(qa, qb).size)
        self.ledger.charge(f"{self.mode.name}:mul", n, self._mul_energy)
        product = np.asarray(raw, dtype=np.float64) / self._half_fmt.scale**2
        # Saturating output stage: the masked multiplier wraps when the
        # true product leaves the word; clamp those lanes instead.
        true = a * b
        overflow = np.abs(true) > self.fmt.max_value
        if np.any(overflow):
            product = np.where(
                overflow,
                np.clip(true, self.fmt.min_value, self.fmt.max_value),
                product,
            )
        return self.fmt.quantize(product)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip values through the datapath format (no energy)."""
        return self.fmt.quantize(np.asarray(x, dtype=np.float64))

    def describe(self) -> str:
        """One-line description of the engine configuration."""
        return (
            f"ApproxEngine(mode={self.mode.name}, adder={self.mode.adder.describe()}, "
            f"fmt={self.fmt.describe()})"
        )
