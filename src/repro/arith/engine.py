"""The approximate execution engine.

An :class:`ApproxEngine` executes the additive kernels of an iterative
method *through* a bit-level adder model: float operands are quantized to
a :class:`~repro.arith.fixed.FixedPointFormat`, every elementary addition
is performed by the configured adder (vectorized), and the result is
decoded back to floats.  Every elementary addition is charged to an
:class:`EnergyLedger`, which is how the experiments obtain the paper's
"energy consumption on total approximate parts".

Multiplications are performed exactly in floating point: the paper's
platform approximates the adders only (Table 2, "Adder Impact"), and the
dot-product / matrix-vector kernels below therefore approximate the
*accumulation*, which is where approximate adders bite in practice.

Reductions use a balanced binary tree, mirroring a hardware adder-tree
reduction unit; ``n`` summands cost exactly ``n - 1`` elementary
additions per output lane regardless of tree shape.

Fixed-point residency
---------------------
Every public kernel accepts a ``resident=True`` keyword to return a
:class:`ResidentVector` — the raw fixed-point words plus their format —
instead of decoded floats, and accepts :class:`ResidentVector` operands
wherever it accepts float arrays.  Chained kernels (``sub(rhs,
matvec(A, x, resident=True))`` and friends) then encode once on entry
and decode once on exit instead of round-tripping through floats at
every step.  Because ``encode(decode(w)) == w`` for every representable
word at the supported widths, residency changes *no results and no
energy accounting* — it only removes redundant conversions.  Setting
``fast_path=False`` (or flipping :attr:`ApproxEngine.default_fast_path`)
restores the literal pre-residency execution, which the perf benchmarks
use as their baseline.

Pinned (cached) operands
------------------------
Iterative methods feed the same constant operands — the system matrix,
the right-hand side, cluster points — into every iteration.
:meth:`ApproxEngine.pin` encodes an additive constant once per engine
(hence once per format) and returns the cached :class:`ResidentVector`
on every subsequent call with the same array; :meth:`ApproxEngine.pin_matrix`
validates and profiles a multiplicative constant once and returns a
:class:`ResidentMatrix` whose products can skip the per-call finiteness
scan.  Both caches key on the pin name plus array identity: pinning a
*different* array under an existing name re-encodes (the version bump),
in-place mutation of a pinned array requires re-pinning, and the caches
die with the engine, so a new format always starts cold.  Legacy engines
(``fast_path=False``) accept the same calls but re-encode every time —
the oracle stays literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

try:  # The engine treats scipy as optional (it is a declared project
    # dependency, but every scipy-accelerated path keeps a pure-NumPy
    # fallback); used only for the *exact* CSR helpers, never in the
    # approximate datapath itself.
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

from repro.arith.fixed import FixedPointFormat
from repro.arith.modes import ApproxMode
from repro.backends import KernelBackend, resolve_backend
from repro.hardware import bitops


class ResidentVector:
    """Fixed-point words kept resident in the datapath between kernels.

    A thin, immutable-by-convention wrapper pairing an ``int64`` word
    array with the :class:`~repro.arith.fixed.FixedPointFormat` it is
    encoded in.  Engines hand these out when a kernel is called with
    ``resident=True`` and accept them as operands, skipping the
    decode/encode round-trip between chained operations.

    Attributes:
        words: the fixed-point words (``int64``, any shape).
        fmt: the format the words are encoded in.
    """

    __slots__ = ("words", "fmt", "_bounds")

    def __init__(
        self,
        words: np.ndarray,
        fmt: FixedPointFormat,
        bounds: tuple[int, int] | None = None,
    ):
        self.words = np.asarray(words, dtype=np.int64)
        self.fmt = fmt
        self._bounds = bounds

    @property
    def shape(self) -> tuple[int, ...]:
        return self.words.shape

    @property
    def size(self) -> int:
        return int(self.words.size)

    def bounds(self) -> tuple[int, int] | None:
        """Cached ``(min, max)`` of the words; ``None`` when empty."""
        if self._bounds is None and self.words.size:
            self._bounds = (int(self.words.min()), int(self.words.max()))
        return self._bounds

    def decode(self) -> np.ndarray:
        """The float values these words represent."""
        return self.fmt.decode(self.words)

    def __array__(self, dtype=None, copy=None):
        if copy is False:
            # NumPy 2 semantics: ``copy=False`` demands a zero-copy view,
            # but decoding always materialises a fresh float array.
            raise ValueError(
                "ResidentVector cannot be converted to an array without "
                "copying (decode allocates); use copy=None or copy=True"
            )
        decoded = self.decode()
        return decoded if dtype is None else decoded.astype(dtype)

    def __repr__(self) -> str:
        return f"ResidentVector(shape={self.words.shape}, fmt={self.fmt.describe()})"


class ResidentMatrix:
    """A constant multiplicative operand validated and profiled once.

    Multiplicative constants (the system matrix in ``matvec``, the
    cluster points in ``weighted_sum``) are *not* encoded to fixed point
    — products are exact float and only the accumulation is approximate
    — so what repeats every iteration is the full finiteness scan of the
    ``rows × cols`` product array inside ``encode``.  Pinning checks the
    constant finite once and records its absolute maximum; each call
    then proves the product finite from ``abs_max`` times the iterate's
    absolute maximum (an ``O(n)`` scan instead of ``O(rows × cols)``)
    and encodes with the scan skipped.  The emitted words are identical
    either way.

    The wrapped array is treated as immutable: mutating it after
    pinning invalidates the cached ``abs_max`` — re-pin instead.

    Attributes:
        array: the validated float64 constant.
        abs_max: ``max(|array|)`` (``0.0`` when empty).
    """

    __slots__ = ("array", "abs_max")

    def __init__(self, array: np.ndarray):
        arr = np.asarray(array, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            raise ValueError("cannot pin non-finite values")
        self.array = arr
        self.abs_max = float(np.abs(arr).max()) if arr.size else 0.0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def ndim(self) -> int:
        return self.array.ndim

    def __array__(self, dtype=None, copy=None):
        if copy:
            return self.array.astype(dtype, copy=True) if dtype else self.array.copy()
        return self.array if dtype is None else self.array.astype(dtype, copy=False)

    def __repr__(self) -> str:
        return f"ResidentMatrix(shape={self.array.shape}, abs_max={self.abs_max:g})"


class SparseReductionPlan:
    """Per-row tree-reduce schedule over variable-length nnz segments.

    Pure CSR geometry, engine-independent: rows are grouped by nnz
    length, and each group carries a precomputed ``(g, L)`` gather-index
    slab into the flat product array.  A sparse matvec then reduces one
    contiguous ``(L, g)`` slab per group through the engine's ordinary
    balanced-tree :meth:`~ApproxEngine._reduce_words` — incremental
    saturation bounds, the dense plan cache, and the legacy concat twin
    all apply unchanged, which is what makes the sparse fast path and
    its slow twin bit-identical with float-equal ledgers by
    construction.

    Groups are visited in ascending segment length, rows within a group
    in row order; this ordering is part of the ledger contract (both
    engine paths and program replay follow it).

    Attributes:
        n_rows: number of matrix rows (empty rows included).
        buckets: list of ``(length, rows, gather)`` with ``rows`` the
            row indices of that nnz length and ``gather`` the ``(g, L)``
            int64 indices of their products; zero-length rows are
            omitted (their output word is the encoded zero).
    """

    __slots__ = ("n_rows", "buckets")

    def __init__(self, indptr: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        self.n_rows = int(indptr.size - 1)
        row_nnz = np.diff(indptr)
        self.buckets: list[tuple[int, np.ndarray, np.ndarray]] = []
        for length in np.unique(row_nnz):
            if length == 0:
                continue
            rows = np.nonzero(row_nnz == length)[0]
            gather = indptr[rows][:, None] + np.arange(int(length), dtype=np.int64)
            self.buckets.append((int(length), rows, gather))


class SparseResidentMatrix:
    """A constant CSR multiplicative operand validated and profiled once.

    The sparse sibling of :class:`ResidentMatrix`: products stay exact
    float over the stored entries only, and each output row accumulates
    its own nnz products through the approximate adder — ``nnz_i - 1``
    elementary additions per row, zero for empty or single-entry rows.
    The per-row abs-max finiteness/bound proofs transfer directly from
    the dense operand: ``abs_max`` is ``max(|data|)``, so the product
    bound ``abs_max * max|x|`` covers every stored product, and replay's
    fused-reduction proof specializes the dense ``n`` to ``nnz_max``.

    The arrays are treated as immutable after construction (like a
    pinned dense operand); the row plan and the transpose are built
    lazily and cached on the instance.

    Attributes:
        data: nnz float64 values.
        indices: nnz int64 column indices (ascending within each row).
        indptr: ``rows + 1`` int64 row pointers.
        shape: ``(rows, cols)``.
        abs_max: ``max(|data|)`` (``0.0`` when empty).
        nnz_max: largest per-row nnz (the replay fusion bound).
    """

    __slots__ = (
        "data",
        "indices",
        "indptr",
        "shape",
        "abs_max",
        "nnz_max",
        "_plan",
        "_transpose",
        "_exact_geom",
        "_row_ids",
        "_scipy",
        "_scipy_T",
    )

    ndim = 2

    def __init__(self, data, indices, indptr, shape):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        rows, cols = (int(s) for s in shape)
        self.shape = (rows, cols)
        if self.indptr.shape != (rows + 1,):
            raise ValueError("CSR indptr must have rows + 1 entries")
        if self.data.shape != self.indices.shape or self.data.ndim != 1:
            raise ValueError("CSR data and indices must be flat and equal-length")
        if int(self.indptr[0]) != 0 or int(self.indptr[-1]) != self.data.size:
            raise ValueError("CSR indptr must span the data array")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("CSR indptr must be non-decreasing")
        if self.indices.size and (
            int(self.indices.min()) < 0 or int(self.indices.max()) >= cols
        ):
            raise ValueError("CSR column index out of range")
        if not np.all(np.isfinite(self.data)):
            raise ValueError("cannot pin non-finite values")
        self.abs_max = float(np.abs(self.data).max()) if self.data.size else 0.0
        nnz = np.diff(self.indptr)
        self.nnz_max = int(nnz.max()) if nnz.size else 0
        self._plan = None
        self._transpose = None
        self._exact_geom = None
        self._row_ids = None
        self._scipy = None
        self._scipy_T = None

    @classmethod
    def from_dense(cls, array) -> "SparseResidentMatrix":
        """CSR of the nonzero entries of a dense 2-D array."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError("from_dense needs a 2-D array")
        rows, cols = np.nonzero(arr)
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=arr.shape[0]), out=indptr[1:])
        return cls(arr[rows, cols], cols, indptr, arr.shape)

    @classmethod
    def from_coo(cls, rows, cols, values, shape) -> "SparseResidentMatrix":
        """CSR from unsorted COO triplets (duplicates are summed)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        n_rows, n_cols = (int(s) for s in shape)
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("COO row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("COO column index out of range")
        key = rows * n_cols + cols
        uniq, inverse = np.unique(key, return_inverse=True)
        data = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(data, inverse, values)
        r = uniq // n_cols
        c = uniq % n_cols
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(r, minlength=n_rows), out=indptr[1:])
        return cls(data, c, indptr, (n_rows, n_cols))

    @classmethod
    def from_csr_like(cls, matrix) -> "SparseResidentMatrix":
        """Adopt any scipy-style object exposing ``tocsr()`` (duck-typed
        so scipy stays an optional dependency of the engine)."""
        csr = matrix.tocsr()
        return cls(csr.data, csr.indices, csr.indptr, csr.shape)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row_plan(self) -> SparseReductionPlan:
        """The cached per-row reduce schedule (built on first use)."""
        if self._plan is None:
            self._plan = SparseReductionPlan(self.indptr)
        return self._plan

    def row_ids(self) -> np.ndarray:
        """Cached COO row index of every stored entry (nnz int64)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_ids

    def transpose(self) -> "SparseResidentMatrix":
        """The cached CSR transpose (``weighted_sum`` reduces through
        it: ``sum_i w_i * S[i, :] == S.T @ w``)."""
        if self._transpose is None:
            self._transpose = SparseResidentMatrix.from_coo(
                self.indices, self.row_ids(), self.data, (self.shape[1], self.shape[0])
            )
        return self._transpose

    def _scipy_handle(self):
        """Cached scipy CSR view of the pinned arrays (None w/o scipy)."""
        if _scipy_sparse is not None and self._scipy is None:
            self._scipy = _scipy_sparse.csr_matrix(
                (self.data, self.indices, self.indptr), shape=self.shape
            )
        return self._scipy

    def matvec_exact(self, x: np.ndarray) -> np.ndarray:
        """Exact float64 ``A @ x`` (solver objectives/gradients; the
        approximate datapath goes through the engine instead).

        Control loops evaluate this every iteration, so the geometry is
        cached on the instance: a scipy CSR handle when scipy is
        available (C row loop, no temporaries), else the non-empty-row
        reduceat partition — rebuilding either O(rows) structure per
        call dominated the call at web scale."""
        x = np.asarray(x, dtype=np.float64)
        if not self.data.size:
            return np.zeros(self.shape[0], dtype=np.float64)
        handle = self._scipy_handle()
        if handle is not None:
            return handle @ x
        out = np.zeros(self.shape[0], dtype=np.float64)
        if self._exact_geom is None:
            nz = self.indptr[:-1] < self.indptr[1:]
            self._exact_geom = (nz, np.ascontiguousarray(self.indptr[:-1][nz]))
        nz, starts = self._exact_geom
        out[nz] = np.add.reduceat(self.data * x[self.indices], starts)
        return out

    def rmatvec_exact(self, y: np.ndarray) -> np.ndarray:
        """Exact float64 ``A.T @ y``.

        Both branches accumulate each output in ascending source-row
        order: the cached scipy CSC view walks a column's entries by
        row, and ``bincount`` accumulates the flat (row-major) entry
        order — the same sequential order ``np.add.at`` walks, minus
        the scatter-add's per-element dispatch cost."""
        y = np.asarray(y, dtype=np.float64)
        if not self.data.size:
            return np.zeros(self.shape[1], dtype=np.float64)
        handle = self._scipy_handle()
        if handle is not None:
            if self._scipy_T is None:
                self._scipy_T = handle.T.tocsr()
            return self._scipy_T @ y
        return np.bincount(
            self.indices,
            weights=self.data * y[self.row_ids()],
            minlength=self.shape[1],
        )

    def diagonal(self) -> np.ndarray:
        """The stored main diagonal (zeros where no entry is stored)."""
        n = min(self.shape)
        out = np.zeros(n, dtype=np.float64)
        for i in range(n):
            lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
            j = np.searchsorted(self.indices[lo:hi], i)
            if j < hi - lo and self.indices[lo + j] == i:
                out[i] = self.data[lo + j]
        return out

    def toarray(self) -> np.ndarray:
        """Densify (test/diagnostic helper; never used on the hot path)."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def __repr__(self) -> str:
        return (
            f"SparseResidentMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nnz_max={self.nnz_max}, abs_max={self.abs_max:g})"
        )


@dataclass
class EnergyLedger:
    """Accumulates elementary-addition counts and energy, per mode.

    Attributes:
        adds: total elementary additions executed.
        energy: total energy units charged.
        adds_by_mode: per-mode addition counts.
        energy_by_mode: per-mode energy totals.
        observer: optional observability hook (duck-typed
            :class:`repro.obs.observer.Observer`); every charge is
            forwarded to its ``on_charge`` so traced runs see where
            energy goes without the ledger depending on the obs
            package.  Excluded from equality and snapshots.
    """

    adds: int = 0
    energy: float = 0.0
    adds_by_mode: dict[str, int] = field(default_factory=dict)
    energy_by_mode: dict[str, float] = field(default_factory=dict)
    observer: object | None = field(default=None, compare=False, repr=False)

    def charge(self, mode_name: str, n_adds: int, energy_per_add: float) -> None:
        """Record ``n_adds`` elementary additions on mode ``mode_name``."""
        if n_adds < 0:
            raise ValueError(f"n_adds must be >= 0, got {n_adds}")
        cost = n_adds * energy_per_add
        self.adds += n_adds
        self.energy += cost
        self.adds_by_mode[mode_name] = self.adds_by_mode.get(mode_name, 0) + n_adds
        self.energy_by_mode[mode_name] = (
            self.energy_by_mode.get(mode_name, 0.0) + cost
        )
        if self.observer is not None:
            self.observer.on_charge(mode_name, n_adds, cost)

    def charge_many(
        self, charges: "list[tuple[str, int, float]]"
    ) -> None:
        """Apply a sequence of ``(mode_name, n_adds, energy_per_add)``
        charges in order.

        Exactly equivalent — float accumulation for float accumulation —
        to calling :meth:`charge` once per tuple: a replayed iteration
        (see :mod:`repro.arith.program`) flushes its deferred charge list
        through one call without perturbing the accumulation order the
        interpreted execution would have used, so ledgers stay equal as
        floats, not merely approximately.

        The loop body is :meth:`charge` inlined with the counters held
        in locals (replay flushes tens of thousands of scalar charges
        per iteration at web scale, where per-tuple attribute traffic
        was measurable); the accumulation order is untouched.
        """
        observer = self.observer
        if observer is not None:
            for mode_name, n_adds, energy_per_add in charges:
                self.charge(mode_name, n_adds, energy_per_add)
            return
        adds = self.adds
        energy = self.energy
        adds_by_mode = self.adds_by_mode
        energy_by_mode = self.energy_by_mode
        get_adds = adds_by_mode.get
        get_energy = energy_by_mode.get
        try:
            for mode_name, n_adds, energy_per_add in charges:
                if n_adds < 0:
                    raise ValueError(f"n_adds must be >= 0, got {n_adds}")
                cost = n_adds * energy_per_add
                adds += n_adds
                energy += cost
                adds_by_mode[mode_name] = get_adds(mode_name, 0) + n_adds
                energy_by_mode[mode_name] = get_energy(mode_name, 0.0) + cost
        finally:
            # Write-back in a finally so a mid-list validation error
            # leaves the totals consistent with the per-mode dicts,
            # exactly as the per-call path would.
            self.adds = adds
            self.energy = energy

    def reset(self) -> None:
        """Zero every counter."""
        self.adds = 0
        self.energy = 0.0
        self.adds_by_mode.clear()
        self.energy_by_mode.clear()

    def snapshot(self) -> "EnergyLedger":
        """An independent copy (for before/after deltas)."""
        return EnergyLedger(
            adds=self.adds,
            energy=self.energy,
            adds_by_mode=dict(self.adds_by_mode),
            energy_by_mode=dict(self.energy_by_mode),
        )

    def delta_energy(self, earlier: "EnergyLedger") -> float:
        """Energy charged since ``earlier`` was snapshotted."""
        return self.energy - earlier.energy


class ReductionPlan:
    """Precomputed geometry for one tree-reduce input shape.

    The balanced-tree fold visits the same level splits for every input
    of a given shape, so the per-level ``n // 2`` / odd-tail bookkeeping
    and the tail carry buffer can be computed once and reused.  Plans
    are cached per engine keyed by input shape — and an engine is bound
    to one ``(fmt, mode)``, so the cache key of the issue
    (``(n, fmt, mode)``) falls out of engine identity.  A plan holds no
    data-dependent state: the fold still runs the identical sequence of
    adder calls with the identical per-level ledger charges.

    Attributes:
        levels: :func:`repro.hardware.bitops.reduction_levels` output.
        buf: preallocated tail-carry buffer sized for the first (widest)
            odd level, or ``None`` when no level is odd.
    """

    __slots__ = ("levels", "buf")

    def __init__(self, shape: tuple[int, ...]):
        self.levels = bitops.reduction_levels(shape[0])
        self.buf = None
        for half, odd in self.levels:
            if odd:
                # Widest odd level comes first (sizes only shrink).
                self.buf = np.empty((half + 1,) + shape[1:], dtype=np.int64)
                break


class ApproxEngine:
    """Executes additive kernels through one approximation mode.

    Args:
        mode: the :class:`~repro.arith.modes.ApproxMode` to execute on.
        fmt: fixed-point format of the datapath.
        ledger: energy ledger to charge; a private one is created when
            omitted.  Several engines (one per mode) typically share a
            single ledger so a run's total energy lands in one place.
        approximate_multiplier: when ``True``, :meth:`mul` runs on an
            array multiplier *composed from the mode's adder* (so adder
            approximation propagates into products, as in silicon)
            instead of exact float multiplication.  Off by default —
            the paper's platform approximates adders only.
        fast_path: enables fixed-point residency and the saturation
            range precheck.  ``None`` (default) takes
            :attr:`default_fast_path`.  ``False`` reproduces the
            pre-residency execution exactly: every saturating add
            recomputes the true sum, reductions concatenate per level,
            and ``resident=True`` requests still return floats.
    """

    #: Class-wide default for ``fast_path`` — flipped to ``False`` by the
    #: perf benchmarks to measure the legacy execution on otherwise
    #: identical code paths.
    default_fast_path: bool = True

    def __init__(
        self,
        mode: ApproxMode,
        fmt: FixedPointFormat,
        ledger: EnergyLedger | None = None,
        approximate_multiplier: bool = False,
        fast_path: bool | None = None,
        backend: "str | KernelBackend | None" = None,
    ):
        if mode.adder.width != fmt.width:
            raise ValueError(
                f"mode width {mode.adder.width} != format width {fmt.width}"
            )
        self.mode = mode
        self.fmt = fmt
        self.backend = resolve_backend(backend)
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.approximate_multiplier = bool(approximate_multiplier)
        self.fast_path = (
            self.default_fast_path if fast_path is None else bool(fast_path)
        )
        self._signed_lo, self._signed_hi = bitops.signed_range(fmt.width)
        self._multiplier = None
        self._mul_energy = None
        # Pinned-operand caches (fast path only; legacy engines stay
        # literal).  ``_pinned*`` key by name; ``_operand_cache`` keys by
        # ``id`` so raw arrays passed straight to kernels hit too.  Each
        # entry keeps a reference to the pinned array, both to validate
        # identity and to keep the id stable while cached.
        self._pinned: dict[str, tuple[np.ndarray, ResidentVector]] = {}
        self._pinned_matrices: dict[str, tuple[np.ndarray, ResidentMatrix]] = {}
        self._operand_cache: dict[int, tuple[np.ndarray, ResidentVector]] = {}
        self._reduce_plans: dict[tuple[int, ...], ReductionPlan] = {}
        self.encode_cache_hits = 0
        self.encode_cache_misses = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.mul_overflow_skips = 0

    # ------------------------------------------------------------------
    # Pinned (cached) constant operands
    # ------------------------------------------------------------------
    def pin(self, name: str, array: np.ndarray) -> ResidentVector:
        """Encode an additive constant once and cache it under ``name``.

        Returns the cached :class:`ResidentVector` (bounds pre-scanned)
        whenever called again with the *same array object*; a different
        array under an existing name re-encodes and replaces the entry.
        On legacy engines (``fast_path=False``) every call re-encodes —
        the oracle performs the literal per-iteration work.
        """
        arr = np.asarray(array, dtype=np.float64)
        if self.fast_path:
            entry = self._pinned.get(name)
            if entry is not None and entry[0] is arr:
                self.encode_cache_hits += 1
                return entry[1]
        rv = ResidentVector(self.fmt.encode(arr), self.fmt)
        rv.bounds()
        if self.fast_path:
            stale = self._pinned.get(name)
            if stale is not None:
                self._operand_cache.pop(id(stale[0]), None)
            self._pinned[name] = (arr, rv)
            self._operand_cache[id(arr)] = (arr, rv)
            self.encode_cache_misses += 1
        return rv

    def pin_matrix(self, name: str, matrix: np.ndarray) -> ResidentMatrix:
        """Validate a multiplicative constant once and cache it.

        The returned :class:`ResidentMatrix` lets :meth:`matvec` /
        :meth:`weighted_sum` skip the per-call product finiteness scan
        (see the class docstring).  Same keying and legacy semantics as
        :meth:`pin`.

        A :class:`SparseResidentMatrix` passes through unchanged (it is
        its own pin — validated and profiled at construction); a
        scipy-style sparse object (anything with ``tocsr()``) is adopted
        into one, cached under the same name/identity keying.
        """
        if isinstance(matrix, SparseResidentMatrix):
            return matrix
        if hasattr(matrix, "tocsr"):
            if self.fast_path:
                entry = self._pinned_matrices.get(name)
                if entry is not None and entry[0] is matrix:
                    self.encode_cache_hits += 1
                    return entry[1]
            sp = SparseResidentMatrix.from_csr_like(matrix)
            if self.fast_path:
                self._pinned_matrices[name] = (matrix, sp)
                self.encode_cache_misses += 1
            return sp
        arr = np.asarray(matrix, dtype=np.float64)
        if self.fast_path:
            entry = self._pinned_matrices.get(name)
            if entry is not None and entry[0] is arr:
                self.encode_cache_hits += 1
                return entry[1]
        rm = ResidentMatrix(arr)
        if self.fast_path:
            self._pinned_matrices[name] = (arr, rm)
            self.encode_cache_misses += 1
        return rm

    def unpin(self, name: str) -> None:
        """Drop a pinned operand (both vector and matrix namespaces)."""
        entry = self._pinned.pop(name, None)
        if entry is not None:
            self._operand_cache.pop(id(entry[0]), None)
        self._pinned_matrices.pop(name, None)

    def cache_stats(self) -> dict[str, int]:
        """Counters for the pin/encode and reduction-plan caches."""
        return {
            "encode_cache_hits": self.encode_cache_hits,
            "encode_cache_misses": self.encode_cache_misses,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "pinned_operands": len(self._pinned) + len(self._pinned_matrices),
            "reduce_plans": len(self._reduce_plans),
            "mul_overflow_skips": self.mul_overflow_skips,
        }

    # ------------------------------------------------------------------
    # Elementary fixed-point plumbing
    # ------------------------------------------------------------------
    def _coerce(self, x) -> tuple[np.ndarray, tuple[int, int] | None]:
        """Operand → ``(words, bounds)``; floats are encoded, residents
        are taken as-is (their cached bounds ride along)."""
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            return x.words, x.bounds()
        arr = np.asarray(x, dtype=np.float64)
        if self._operand_cache:
            entry = self._operand_cache.get(id(arr))
            if entry is not None and entry[0] is arr:
                self.encode_cache_hits += 1
                rv = entry[1]
                return rv.words, rv.bounds()
        return self.fmt.encode(arr), None

    def _check_fmt(self, rv: ResidentVector) -> None:
        if rv.fmt != self.fmt:
            raise ValueError(
                f"resident vector format {rv.fmt.describe()} does not match "
                f"engine format {self.fmt.describe()}"
            )

    def _to_float(self, x) -> np.ndarray:
        """Operand → float array (decoding residents)."""
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            return x.decode()
        return np.asarray(x, dtype=np.float64)

    def _emit(self, words: np.ndarray, resident: bool):
        """Kernel output: resident words on request (fast path only),
        decoded floats otherwise."""
        if resident and self.fast_path:
            return ResidentVector(words, self.fmt)
        return self.fmt.decode(words)

    def _saturation_needed(
        self,
        qa: np.ndarray,
        qb: np.ndarray,
        bounds_a: tuple[int, int] | None,
        bounds_b: tuple[int, int] | None,
    ) -> bool:
        """Whether the saturating output stage must recompute true sums.

        On the fast path a cheap range precheck (operand min/max, cached
        on residents) proves most adds cannot leave the representable
        range, skipping the int64 true-sum recompute entirely.  With
        ``fast_path=False`` this always answers ``True``, reproducing
        the unconditional pre-residency recompute.
        """
        if not self.fast_path:
            return True
        if qa.size == 0 or qb.size == 0:
            return False
        if bounds_a is None:
            bounds_a = (int(qa.min()), int(qa.max()))
        if bounds_b is None:
            bounds_b = (int(qb.min()), int(qb.max()))
        return (
            bounds_a[0] + bounds_b[0] < self._signed_lo
            or bounds_a[1] + bounds_b[1] > self._signed_hi
        )

    def _add_words(
        self,
        qa: np.ndarray,
        qb: np.ndarray,
        bounds_a: tuple[int, int] | None = None,
        bounds_b: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Add fixed-point words through the mode's adder, with overflow
        handling and energy charging."""
        out = self.backend.add_signed(self.mode.adder, qa, qb)
        if self.fmt.overflow == "saturate" and self._saturation_needed(
            qa, qb, bounds_a, bounds_b
        ):
            # A saturating output stage: when the *true* sum leaves the
            # representable range, clamp instead of trusting the wrapped
            # (sign-flipped) approximate word.
            true = qa.astype(np.int64) + qb.astype(np.int64)
            lo, hi = self._signed_lo, self._signed_hi
            overflowed = (true < lo) | (true > hi)
            if np.any(overflowed):
                out = np.where(overflowed, np.clip(true, lo, hi), out)
        if qa.shape == qb.shape:
            n = int(qa.size)
        else:
            n = int(np.broadcast(qa, qb).size)
        self._charge(self.mode.name, n, self.mode.energy_per_add)
        return out

    def _charge(self, mode_name: str, n_adds: int, energy_per_add: float) -> None:
        """Ledger-charge hook for every kernel-issued charge.

        Plain engines forward straight to the ledger; the capture/replay
        engine (:class:`repro.arith.program.ProgramEngine`) overrides
        this to log charges while recording and to defer them to one
        ordered end-of-iteration flush while replaying.
        """
        self.ledger.charge(mode_name, n_adds, energy_per_add)

    def _reduce_words(self, q: np.ndarray) -> np.ndarray:
        """Balanced-tree reduction of axis 0 down to a single slice.

        The fast path folds the tree inside one preallocated buffer (no
        per-level ``np.concatenate``); the legacy layout is kept in
        :meth:`_reduce_words_concat`.  Both walk the *same* tree — the
        identical sequence of :meth:`_add_words` calls in the identical
        order — so results and the exact ``n - 1`` adds-per-lane energy
        accounting are unchanged.
        """
        if not self.fast_path:
            return self._reduce_words_concat(q)
        cur = np.asarray(q, dtype=np.int64)
        shape = cur.shape
        if shape[0] <= 1:
            return cur[0]
        plan = self._reduce_plans.get(shape)
        if plan is None:
            plan = ReductionPlan(shape)
            self._reduce_plans[shape] = plan
            self.plan_cache_misses += 1
        else:
            self.plan_cache_hits += 1
        saturating = self.fmt.overflow == "saturate"
        # One min/max over the level bounds both operand halves for the
        # saturation precheck; carried forward level to level.
        bounds = None
        if saturating and cur.size:
            bounds = (int(cur.min()), int(cur.max()))
        # With an exact adder and a saturating output stage every level
        # output equals clip(true sum), so interval arithmetic on the
        # operand bounds is a *sound* over-approximation and the
        # per-level min/max rescans can be skipped.  Approximate adders
        # can emit arbitrary width-bit words — their levels must rescan.
        exact = self.mode.adder.is_exact
        lo_w, hi_w = self._signed_lo, self._signed_hi
        last = len(plan.levels) - 1
        for i, (half, odd) in enumerate(plan.levels):
            folded = self._add_words(
                cur[:half], cur[half : 2 * half], bounds_a=bounds, bounds_b=bounds
            )
            if odd:
                nxt = plan.buf[: half + 1]
                # Tail first: buf may alias cur after an earlier odd
                # level, and index 2*half sits above every write here.
                nxt[half] = cur[2 * half]
                nxt[:half] = folded
                cur = nxt
            else:
                cur = folded
            if bounds is not None and i < last:
                if exact:
                    lo = max(bounds[0] + bounds[0], lo_w)
                    hi = min(bounds[1] + bounds[1], hi_w)
                    if odd:
                        # The carried tail word still has last level's
                        # bounds; widen to cover it.
                        lo = min(lo, bounds[0])
                        hi = max(hi, bounds[1])
                    bounds = (lo, hi)
                else:
                    bounds = (int(cur.min()), int(cur.max()))
        return cur[0]

    def _reduce_words_concat(self, q: np.ndarray) -> np.ndarray:
        """Pre-residency reduction layout: concatenate the folded half
        with the odd tail at every level.  Retained as the benchmark
        baseline and as an oracle for the fast layout's regression
        tests."""
        while q.shape[0] > 1:
            n = q.shape[0]
            half = n // 2
            folded = self._add_words(q[:half], q[half : 2 * half])
            if n % 2:
                q = np.concatenate([folded, q[2 * half :]], axis=0)
            else:
                q = folded
        return q[0]

    # ------------------------------------------------------------------
    # Public kernels: floats in/out by default, fixed-point-resident
    # operands and outputs on request
    # ------------------------------------------------------------------
    def add(self, a, b, *, resident: bool = False):
        """Elementwise ``a + b`` through the approximate datapath."""
        qa, bounds_a = self._coerce(a)
        qb, bounds_b = self._coerce(b)
        qa, qb = np.broadcast_arrays(qa, qb)
        out = self._add_words(qa, qb, bounds_a=bounds_a, bounds_b=bounds_b)
        return self._emit(out, resident)

    def sub(self, a, b, *, resident: bool = False):
        """Elementwise ``a - b`` (negation is free in two's complement)."""
        if isinstance(b, ResidentVector):
            self._check_fmt(b)
            neg = self.fmt.handle_overflow(-b.words)
            bounds = b.bounds()
            if bounds is not None and bounds[0] > self._signed_lo:
                # Negation flips the range; only the most-negative word
                # needs the overflow policy, so bounds stay exact here.
                bounds = (-bounds[1], -bounds[0])
            else:
                bounds = None
            return self.add(
                a, ResidentVector(neg, self.fmt, bounds), resident=resident
            )
        return self.add(a, -np.asarray(b, dtype=np.float64), resident=resident)

    def scale_add(self, x, alpha: float, d, *, resident: bool = False):
        """The iterative-method update rule ``x + alpha * d`` (Eq. 2).

        The scaling multiply is exact (float); the update addition runs
        on the approximate adder — precisely the paper's "update error"
        injection point.
        """
        return self.add(x, alpha * self._to_float(d), resident=resident)

    def sum(
        self,
        x,
        axis: int | None = None,
        *,
        resident: bool = False,
        assume_finite: bool = False,
    ):
        """Tree-reduce ``x`` along ``axis`` (flattened when ``None``).

        Scalar reductions (``axis=None``) always return a float.
        ``assume_finite=True`` skips the entry finiteness scan — only
        pass it when finiteness is already proved (the pinned-operand
        kernels do); the emitted words are identical either way.
        """
        scalar = axis is None
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            q = x.words
        else:
            q = self.fmt.encode(
                np.asarray(x, dtype=np.float64), assume_finite=assume_finite
            )
        if scalar:
            q = q.reshape(-1)
            axis = 0
        if q.shape[axis] == 0:
            out = np.zeros(np.delete(q.shape, axis))
            return float(out) if scalar else self._emit(self.fmt.encode(out), resident)
        reduced = self._reduce_words(np.moveaxis(q, axis, 0))
        if scalar:
            return float(self.fmt.decode(reduced))
        return self._emit(reduced, resident)

    def mean(self, x, axis: int | None = None) -> np.ndarray | float:
        """Approximate-sum mean (the division is exact float)."""
        arr = self._to_float(x)
        count = arr.size if axis is None else arr.shape[axis]
        if count == 0:
            raise ValueError("mean of an empty axis")
        return self.sum(arr, axis=axis) / count

    def dot(self, a, b) -> float:
        """Inner product: exact elementwise products, approximate
        accumulation."""
        a = self._to_float(a).reshape(-1)
        b = self._to_float(b).reshape(-1)
        if a.shape != b.shape:
            raise ValueError(f"dot shape mismatch: {a.shape} vs {b.shape}")
        return float(self.sum(a * b))

    def _trusted_product(
        self, constant: ResidentMatrix, varying: np.ndarray
    ) -> bool:
        """Whether ``constant * varying`` is provably finite.

        ``varying`` is scanned once (``O(n)`` instead of the product's
        ``O(rows × cols)``); a non-finite iterate raises the same error
        the checked encode would.  A product of two finite maxima can
        still overflow to ``inf``, so the proof also requires the bound
        itself to be finite — otherwise the caller falls back to the
        checked encode.  Legacy engines never trust (oracle stays
        literal).
        """
        if not self.fast_path:
            return False
        if varying.size == 0:
            return True
        if not np.all(np.isfinite(varying)):
            raise ValueError("cannot encode non-finite values into fixed point")
        bound = constant.abs_max * float(np.abs(varying).max())
        return bool(np.isfinite(bound))

    def _sparse_matvec_words(
        self, sp: SparseResidentMatrix, vec: np.ndarray
    ) -> np.ndarray:
        """``sp @ vec`` as fixed-point words: exact nnz products, then
        one approximate tree-reduce per row over its own segment.

        Execution is bucket-ordered by the row plan (ascending nnz
        length, rows in index order): each bucket gathers its products
        into an ``(L, g)`` slab and reduces it through
        :meth:`_reduce_words`, so per-level charge order, incremental
        saturation bounds, and the legacy concat twin (``fast_path
        =False``, which also rebuilds the plan per call — the literal
        dense-gather oracle) are all inherited from the dense reduction.
        Empty rows emit the encoded zero word without touching the
        adder.
        """
        products = sp.data * vec[sp.indices]
        trusted = self._trusted_product(sp, vec)
        q = self.fmt.encode(products, assume_finite=trusted)
        plan = sp.row_plan() if self.fast_path else SparseReductionPlan(sp.indptr)
        out = np.zeros(sp.shape[0], dtype=np.int64)
        for _length, rows, gather in plan.buckets:
            out[rows] = self._reduce_words(q[gather].T)
        return out

    def matvec(self, matrix, vector, *, resident: bool = False):
        """``matrix @ vector`` with approximate row accumulation.

        Pass a :class:`ResidentMatrix` (from :meth:`pin_matrix`) as
        ``matrix`` to skip the per-call product finiteness scan; results
        are bit-identical either way.  A :class:`SparseResidentMatrix`
        routes through the per-row segment reduction (``nnz_i - 1`` adds
        per row) instead of the dense ``cols - 1``.
        """
        trusted = False
        if isinstance(matrix, SparseResidentMatrix):
            vec = self._to_float(vector).reshape(-1)
            if matrix.shape[1] != vec.shape[0]:
                raise ValueError(
                    f"matvec shape mismatch: {matrix.shape} vs {vec.shape}"
                )
            return self._emit(self._sparse_matvec_words(matrix, vec), resident)
        if isinstance(matrix, ResidentMatrix):
            mat = matrix.array
            pinned = matrix
        else:
            mat = np.asarray(matrix, dtype=np.float64)
            pinned = None
        vector = self._to_float(vector).reshape(-1)
        if mat.ndim != 2 or mat.shape[1] != vector.shape[0]:
            raise ValueError(
                f"matvec shape mismatch: {mat.shape} vs {vector.shape}"
            )
        if pinned is not None:
            trusted = self._trusted_product(pinned, vector)
        return self.sum(
            mat * vector[np.newaxis, :],
            axis=1,
            resident=resident,
            assume_finite=trusted,
        )

    def weighted_sum(self, weights, points, *, resident: bool = False):
        """``sum_i weights[i] * points[i]`` over rows of ``points``.

        This is the M-step kernel of GMM/K-means mean updates — the
        computation the paper marks as the adder-impact site ("Mean
        Value" in Table 2).  Pass a :class:`ResidentMatrix` (from
        :meth:`pin_matrix`) as ``points`` to skip the per-call product
        finiteness scan; results are bit-identical either way.  A
        :class:`SparseResidentMatrix` reduces through its cached
        transpose (``sum_i w_i * S[i, :] == S.T @ w``), so each output
        component accumulates only the rows with a stored entry in that
        column.
        """
        trusted = False
        if isinstance(points, SparseResidentMatrix):
            w = self._to_float(weights).reshape(-1)
            if points.shape[0] != w.shape[0]:
                raise ValueError(
                    f"weighted_sum shape mismatch: {w.shape} vs {points.shape}"
                )
            return self._emit(
                self._sparse_matvec_words(points.transpose(), w), resident
            )
        if isinstance(points, ResidentMatrix):
            pts = points.array
            pinned = points
        else:
            pts = self._to_float(points)
            pinned = None
        weights = self._to_float(weights).reshape(-1)
        if pts.shape[0] != weights.shape[0]:
            raise ValueError(
                f"weighted_sum shape mismatch: {weights.shape} vs {pts.shape}"
            )
        if pinned is not None:
            trusted = self._trusted_product(pinned, weights)
        return self.sum(
            weights[:, np.newaxis] * pts,
            axis=0,
            resident=resident,
            assume_finite=trusted,
        )

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product.

        Exact float by default (adders-only approximation, as in the
        paper); with ``approximate_multiplier=True`` the product runs on
        a fixed-point array multiplier whose partial products accumulate
        through the mode's adder, and the multiplier's energy is charged
        to the ledger under ``"<mode>:mul"``.

        Fixed-point caveat: a ``width``-bit multiplier cannot hold the
        ``2*width``-bit full product, so — as real narrow datapaths do —
        operands are re-encoded with ``frac_bits // 2`` fractional bits
        each (the product then carries ``frac_bits`` and fits the word
        whenever ``|a*b| <= max_value``), and products that would
        overflow saturate at the output stage.

        When an operand carries a cached absolute bound (a
        :class:`ResidentMatrix`, or a :class:`ResidentVector` whose word
        bounds are scanned) and the bound product provably fits the
        word, the full ``|a*b| > max_value`` overflow scan and the
        ``np.where`` clamp are skipped — the mask would have been
        all-``False``, so the emitted words are identical.
        """
        if not self.approximate_multiplier:
            return np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64)
        amax_a = self._cached_abs_max(a) if self.fast_path else None
        amax_b = self._cached_abs_max(b) if self.fast_path else None
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if self._multiplier is None:
            from repro.hardware.energy import EnergyModel
            from repro.hardware.multipliers import ApproxArrayMultiplier

            self._multiplier = ApproxArrayMultiplier(self.mode.adder)
            model = EnergyModel()
            exact_add = model.cost_of_cells({"fa": self.fmt.width})
            self._mul_energy = (
                model.cost_of_cells(self._multiplier.cell_inventory()) / exact_add
            )
            self._half_fmt = FixedPointFormat(
                self.fmt.width, self.fmt.frac_bits // 2, overflow=self.fmt.overflow
            )
        qa = self._half_fmt.encode(a)
        qb = self._half_fmt.encode(b)
        qa, qb = np.broadcast_arrays(qa, qb)
        raw = self._multiplier.multiply_signed(qa, qb)
        n = int(np.broadcast(qa, qb).size)
        self._charge(f"{self.mode.name}:mul", n, self._mul_energy)
        product = np.asarray(raw, dtype=np.float64) / self._half_fmt.scale**2
        if (
            amax_a is not None
            and amax_b is not None
            and amax_a * amax_b <= self.fmt.max_value
        ):
            # The cached operand bounds prove |a*b| <= max_value
            # everywhere: the overflow mask below would be all-False, so
            # skip the full product scan and the clamp.
            self.mul_overflow_skips += 1
            return self.fmt.quantize(product)
        # Saturating output stage: the masked multiplier wraps when the
        # true product leaves the word; clamp those lanes instead.
        true = a * b
        overflow = np.abs(true) > self.fmt.max_value
        if np.any(overflow):
            product = np.where(
                overflow,
                np.clip(true, self.fmt.min_value, self.fmt.max_value),
                product,
            )
        return self.fmt.quantize(product)

    def _cached_abs_max(self, x) -> float | None:
        """A proven ``max(|x|)`` available without scanning the floats.

        :class:`ResidentMatrix` carries one from pinning;
        :class:`ResidentVector` word bounds convert exactly (words are
        ``value * scale``).  ``None`` for anything else — plain arrays
        would need the very scan the caller is trying to skip.
        """
        if isinstance(x, ResidentMatrix):
            return x.abs_max
        if isinstance(x, ResidentVector) and x.fmt == self.fmt:
            bounds = x.bounds()
            if bounds is None:
                return 0.0
            return max(abs(bounds[0]), abs(bounds[1])) / self.fmt.scale
        return None

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip values through the datapath format (no energy)."""
        return self.fmt.quantize(np.asarray(x, dtype=np.float64))

    def describe(self) -> str:
        """One-line description of the engine configuration."""
        return (
            f"ApproxEngine(mode={self.mode.name}, adder={self.mode.adder.describe()}, "
            f"fmt={self.fmt.describe()})"
        )


# ----------------------------------------------------------------------
# Batched (lane-parallel) execution
# ----------------------------------------------------------------------
class BatchedEnergyLedger:
    """Exact per-lane energy accounting for lock-step batched execution.

    One batched kernel call performs the same elementary additions for
    every lane in the stack, so a single charge fans out to per-lane
    accumulators: ``adds`` and ``energy`` are length-``lanes`` arrays,
    and the per-mode breakdowns are dictionaries of such arrays.  The
    per-lane cost of a charge is computed exactly as
    :meth:`EnergyLedger.charge` computes it (``n_adds * energy_per_add``,
    one float multiply, then one accumulate per charge), so
    :meth:`lane_ledger` reconstructs an :class:`EnergyLedger` that is
    *exactly equal* — not approximately — to the ledger the same lane
    would have accumulated in a solo run.

    Args:
        lanes: number of lanes in the batch.
        observer: optional observability hook; each batched charge is
            forwarded once, aggregated over the charged lanes, to its
            ``on_charge`` (per-lane attribution lives in the trace
            events, not the metric counters).
    """

    __slots__ = (
        "lanes",
        "adds",
        "energy",
        "adds_by_mode",
        "energy_by_mode",
        "observer",
    )

    def __init__(self, lanes: int, observer: object | None = None):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        self.adds = np.zeros(self.lanes, dtype=np.int64)
        self.energy = np.zeros(self.lanes, dtype=np.float64)
        self.adds_by_mode: dict[str, np.ndarray] = {}
        self.energy_by_mode: dict[str, np.ndarray] = {}
        self.observer = observer

    def charge_lanes(
        self,
        mode_name: str,
        lane_ids: np.ndarray,
        adds_per_lane: int,
        energy_per_add: float,
    ) -> None:
        """Charge ``adds_per_lane`` additions to each lane in ``lane_ids``.

        The cost is ``adds_per_lane * energy_per_add`` per lane — the
        identical expression a solo :class:`EnergyLedger` evaluates —
        accumulated elementwise, so per-lane float accumulation order
        matches a solo run's charge sequence addition for addition.
        """
        if adds_per_lane < 0:
            raise ValueError(f"adds_per_lane must be >= 0, got {adds_per_lane}")
        ids = np.asarray(lane_ids, dtype=np.int64).reshape(-1)
        cost = adds_per_lane * energy_per_add
        self.adds[ids] += adds_per_lane
        self.energy[ids] += cost
        mode_adds = self.adds_by_mode.get(mode_name)
        if mode_adds is None:
            mode_adds = np.zeros(self.lanes, dtype=np.int64)
            self.adds_by_mode[mode_name] = mode_adds
            self.energy_by_mode[mode_name] = np.zeros(
                self.lanes, dtype=np.float64
            )
        mode_adds[ids] += adds_per_lane
        self.energy_by_mode[mode_name][ids] += cost
        if self.observer is not None:
            k = int(ids.size)
            self.observer.on_charge(mode_name, adds_per_lane * k, cost * k)

    def charge_many_lanes(
        self, lane_ids: np.ndarray, charges: list[tuple[str, int, float]]
    ) -> None:
        """Fan a deferred per-lane charge list out to ``lane_ids``.

        The batched analogue of :meth:`EnergyLedger.charge_many`: each
        ``(mode_name, adds_per_lane, energy_per_add)`` entry is applied
        through :meth:`charge_lanes` in list order, so every lane's
        float accumulation sequence is identical to charging the ops
        live — which is itself identical to a solo run's sequence.
        """
        for mode_name, adds_per_lane, energy_per_add in charges:
            self.charge_lanes(mode_name, lane_ids, adds_per_lane, energy_per_add)

    def lane_ledger(self, lane: int) -> EnergyLedger:
        """The per-run :class:`EnergyLedger` one lane accumulated.

        Modes the lane never touched are omitted, matching a solo run
        (dict equality ignores insertion order, so the reconstructed
        ledger compares equal to the solo one even when the batch met
        the modes in a different order).
        """
        ledger = EnergyLedger(
            adds=int(self.adds[lane]), energy=float(self.energy[lane])
        )
        for mode_name, mode_adds in self.adds_by_mode.items():
            n = int(mode_adds[lane])
            if n > 0:
                ledger.adds_by_mode[mode_name] = n
                ledger.energy_by_mode[mode_name] = float(
                    self.energy_by_mode[mode_name][lane]
                )
        return ledger

    def totals(self) -> EnergyLedger:
        """Aggregate ledger over every lane (for reporting only — the
        float totals here sum per-lane accumulators, which is not the
        charge order a single shared solo ledger would have seen)."""
        ledger = EnergyLedger(
            adds=int(self.adds.sum()), energy=float(self.energy.sum())
        )
        for mode_name, mode_adds in self.adds_by_mode.items():
            ledger.adds_by_mode[mode_name] = int(mode_adds.sum())
            ledger.energy_by_mode[mode_name] = float(
                self.energy_by_mode[mode_name].sum()
            )
        return ledger


class LaneStack:
    """Per-lane fixed-point words resident between batched kernels.

    The batched analogue of :class:`ResidentVector`: an ``int64`` word
    array whose *leading* axis indexes lanes, plus lazily cached
    per-lane ``(min, max)`` bound arrays feeding the batched saturation
    precheck.  Each lane's slice holds exactly the words the solo
    engine would hold for that lane.
    """

    __slots__ = ("words", "fmt", "_lo", "_hi")

    def __init__(
        self,
        words: np.ndarray,
        fmt: FixedPointFormat,
        lo: np.ndarray | None = None,
        hi: np.ndarray | None = None,
    ):
        self.words = np.asarray(words, dtype=np.int64)
        if self.words.ndim < 1:
            raise ValueError("LaneStack needs a leading lane axis")
        self.fmt = fmt
        self._lo = lo
        self._hi = hi

    @property
    def lanes(self) -> int:
        return self.words.shape[0]

    @property
    def shape(self) -> tuple[int, ...]:
        return self.words.shape

    def lane_bounds(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Cached per-lane ``(min, max)`` arrays; ``None`` when empty."""
        if self._lo is None and self.words.size:
            flat = self.words.reshape(self.words.shape[0], -1)
            self._lo = flat.min(axis=1)
            self._hi = flat.max(axis=1)
        if self._lo is None:
            return None
        return self._lo, self._hi

    def decode(self) -> np.ndarray:
        """The float values these words represent (all lanes)."""
        return self.fmt.decode(self.words)

    def lane(self, i: int) -> np.ndarray:
        """Decoded floats of a single lane."""
        return self.fmt.decode(self.words[i])

    def __array__(self, dtype=None, copy=None):
        if copy is False:
            raise ValueError(
                "LaneStack cannot be converted to an array without "
                "copying (decode allocates); use copy=None or copy=True"
            )
        decoded = self.decode()
        return decoded if dtype is None else decoded.astype(dtype)

    def __repr__(self) -> str:
        return f"LaneStack(shape={self.words.shape}, fmt={self.fmt.describe()})"


def _lane_minmax(
    q: np.ndarray, lane_axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane ``(min, max)`` over every non-lane axis (no copy)."""
    axes = tuple(i for i in range(q.ndim) if i != lane_axis)
    return q.min(axis=axes), q.max(axis=axes)


class BatchedEngine:
    """Lock-step lane-parallel variant of :class:`ApproxEngine`.

    Executes the same additive kernels over a *stack* of independent
    lanes: elementwise kernels take ``(L, ...)`` operands with the lane
    axis leading, reductions fold a ``(n, L, ...)`` slab along axis 0 so
    every lane's balanced tree is walked in one vectorized pass.  The
    adders are elementwise bitwise operations and the tree geometry
    depends only on the reduced axis length, so each lane's output words
    are bit-identical to a solo :class:`ApproxEngine` run of that lane;
    the per-lane saturation bounds only decide whether the true-sum
    recompute executes, never what it produces.

    Shared operands — a :class:`ResidentVector`, a
    :class:`ResidentMatrix`, or a plain ``(N,)`` array common to every
    lane — broadcast against the lane stacks via NumPy trailing-axis
    alignment.

    Call :meth:`select_lanes` before issuing kernels: charges go to the
    selected lane ids of the shared :class:`BatchedEnergyLedger`, which
    is how per-mode sub-batches of a larger run charge only their own
    lanes.

    Args:
        mode: the approximation mode to execute on.
        fmt: fixed-point format of the datapath.
        ledger: the shared per-lane ledger; a private one sized for
            ``lanes`` is created when omitted.
        lanes: lane count used only when ``ledger`` is omitted.
        fast_path: saturation-precheck / residency toggle; ``None``
            takes :attr:`ApproxEngine.default_fast_path`.  Results are
            bit-identical either way.
    """

    def __init__(
        self,
        mode: ApproxMode,
        fmt: FixedPointFormat,
        ledger: BatchedEnergyLedger | None = None,
        lanes: int | None = None,
        fast_path: bool | None = None,
        backend: "str | KernelBackend | None" = None,
    ):
        if mode.adder.width != fmt.width:
            raise ValueError(
                f"mode width {mode.adder.width} != format width {fmt.width}"
            )
        self.mode = mode
        self.fmt = fmt
        self.backend = resolve_backend(backend)
        if ledger is None:
            ledger = BatchedEnergyLedger(lanes if lanes is not None else 1)
        self.ledger = ledger
        self.fast_path = (
            ApproxEngine.default_fast_path if fast_path is None else bool(fast_path)
        )
        self._signed_lo, self._signed_hi = bitops.signed_range(fmt.width)
        self.lane_ids: np.ndarray | None = None
        self._pinned: dict[str, tuple[np.ndarray, ResidentVector]] = {}
        self._pinned_matrices: dict[str, tuple[np.ndarray, ResidentMatrix]] = {}
        self._reduce_plans: dict[tuple[int, ...], ReductionPlan] = {}
        self.encode_cache_hits = 0
        self.encode_cache_misses = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # Lane selection and pinned operands
    # ------------------------------------------------------------------
    def select_lanes(self, lane_ids) -> None:
        """Set the ledger lanes subsequent kernel calls charge to.

        The order of ``lane_ids`` is the order of rows in every stacked
        operand: row ``r`` of an ``(L, ...)`` stack belongs to ledger
        lane ``lane_ids[r]``.
        """
        ids = np.asarray(lane_ids, dtype=np.int64).reshape(-1)
        if ids.size == 0:
            raise ValueError("select_lanes needs at least one lane")
        self.lane_ids = ids

    def pin(self, name: str, array: np.ndarray) -> ResidentVector:
        """Encode a lane-shared additive constant once (see
        :meth:`ApproxEngine.pin`; encoding charges no energy, so pinning
        never perturbs parity with solo runs)."""
        arr = np.asarray(array, dtype=np.float64)
        entry = self._pinned.get(name)
        if entry is not None and entry[0] is arr:
            self.encode_cache_hits += 1
            return entry[1]
        rv = ResidentVector(self.fmt.encode(arr), self.fmt)
        rv.bounds()
        self._pinned[name] = (arr, rv)
        self.encode_cache_misses += 1
        return rv

    def pin_matrix(self, name: str, matrix: np.ndarray) -> ResidentMatrix:
        """Validate a lane-shared multiplicative constant once (see
        :meth:`ApproxEngine.pin_matrix`).  Sparse operands pass through
        (:class:`SparseResidentMatrix`) or are adopted (``tocsr()``
        duck-types), exactly as in the solo engine."""
        if isinstance(matrix, SparseResidentMatrix):
            return matrix
        if hasattr(matrix, "tocsr"):
            entry = self._pinned_matrices.get(name)
            if entry is not None and entry[0] is matrix:
                self.encode_cache_hits += 1
                return entry[1]
            sp = SparseResidentMatrix.from_csr_like(matrix)
            self._pinned_matrices[name] = (matrix, sp)
            self.encode_cache_misses += 1
            return sp
        arr = np.asarray(matrix, dtype=np.float64)
        entry = self._pinned_matrices.get(name)
        if entry is not None and entry[0] is arr:
            self.encode_cache_hits += 1
            return entry[1]
        rm = ResidentMatrix(arr)
        self._pinned_matrices[name] = (arr, rm)
        self.encode_cache_misses += 1
        return rm

    def cache_stats(self) -> dict[str, int]:
        """Counters for the pin/encode and reduction-plan caches."""
        return {
            "encode_cache_hits": self.encode_cache_hits,
            "encode_cache_misses": self.encode_cache_misses,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "pinned_operands": len(self._pinned) + len(self._pinned_matrices),
            "reduce_plans": len(self._reduce_plans),
        }

    # ------------------------------------------------------------------
    # Fixed-point plumbing (lane-aware)
    # ------------------------------------------------------------------
    def _check_fmt(self, operand) -> None:
        if operand.fmt != self.fmt:
            raise ValueError(
                f"operand format {operand.fmt.describe()} does not match "
                f"engine format {self.fmt.describe()}"
            )

    def _coerce(self, x):
        """Operand → ``(words, bounds)``.

        Bounds are ``(lo, hi)`` where each side is a scalar (shared
        resident) or a per-lane array (lane stack); both broadcast in
        the precheck.
        """
        if isinstance(x, LaneStack):
            self._check_fmt(x)
            return x.words, x.lane_bounds()
        if isinstance(x, ResidentVector):
            self._check_fmt(x)
            return x.words, x.bounds()
        arr = np.asarray(x, dtype=np.float64)
        return self.fmt.encode(arr), None

    def _to_float(self, x) -> np.ndarray:
        if isinstance(x, (LaneStack, ResidentVector)):
            self._check_fmt(x)
            return x.decode()
        return np.asarray(x, dtype=np.float64)

    def _emit(self, words: np.ndarray, resident: bool):
        if resident and self.fast_path:
            return LaneStack(words, self.fmt)
        return self.fmt.decode(words)

    def _saturation_needed(
        self, qa, qb, bounds_a, bounds_b, lane_axis: int
    ) -> bool:
        """Global (any-lane) version of the solo range precheck.

        The precheck only decides whether the true-sum recompute runs;
        the recompute itself is per-element, so a conservative global
        answer keeps per-lane results bit-identical.
        """
        if not self.fast_path:
            return True
        if qa.size == 0 or qb.size == 0:
            return False
        if bounds_a is None:
            bounds_a = _lane_minmax(qa, lane_axis)
        if bounds_b is None:
            bounds_b = _lane_minmax(qb, lane_axis)
        lo = np.asarray(bounds_a[0]) + np.asarray(bounds_b[0])
        hi = np.asarray(bounds_a[1]) + np.asarray(bounds_b[1])
        return bool(np.any(lo < self._signed_lo) or np.any(hi > self._signed_hi))

    def _add_words(
        self,
        qa: np.ndarray,
        qb: np.ndarray,
        bounds_a=None,
        bounds_b=None,
        lane_axis: int = 0,
    ) -> np.ndarray:
        """Lane-stacked :meth:`ApproxEngine._add_words`: the adder and
        the saturating output stage are elementwise, so each lane's
        slice is bit-identical to a solo add; the charge fans out as
        ``size // lanes`` adds to every selected lane."""
        if self.lane_ids is None:
            raise RuntimeError("call select_lanes() before issuing kernels")
        out = self.backend.add_signed(self.mode.adder, qa, qb)
        if self.fmt.overflow == "saturate" and self._saturation_needed(
            qa, qb, bounds_a, bounds_b, lane_axis
        ):
            true = qa.astype(np.int64) + qb.astype(np.int64)
            lo, hi = self._signed_lo, self._signed_hi
            overflowed = (true < lo) | (true > hi)
            if np.any(overflowed):
                out = np.where(overflowed, np.clip(true, lo, hi), out)
        lanes = qa.shape[lane_axis]
        if lanes != self.lane_ids.shape[0]:
            raise ValueError(
                f"operand has {lanes} lanes but {self.lane_ids.shape[0]} "
                "are selected"
            )
        n_per_lane = int(qa.size) // lanes
        self._charge_lanes(
            self.mode.name, n_per_lane, self.mode.energy_per_add
        )
        return out

    def _charge_lanes(
        self, mode_name: str, adds_per_lane: int, energy_per_add: float
    ) -> None:
        """Ledger indirection, mirroring :meth:`ApproxEngine._charge`:
        the batched program engine overrides this to record charges while
        capturing and defer them while replaying."""
        self.ledger.charge_lanes(
            mode_name, self.lane_ids, adds_per_lane, energy_per_add
        )

    def _reduce_words(self, q: np.ndarray) -> np.ndarray:
        """Balanced-tree reduction of axis 0 of a ``(n, L, ...)`` slab.

        Walks the identical tree as :meth:`ApproxEngine._reduce_words`
        (the level splits depend only on ``n``), with the incremental
        saturation bounds kept per lane — exact adders propagate
        interval arithmetic elementwise, approximate adders rescan.
        """
        cur = np.asarray(q, dtype=np.int64)
        shape = cur.shape
        if shape[0] <= 1:
            return cur[0]
        plan = self._reduce_plans.get(shape)
        if plan is None:
            plan = ReductionPlan(shape)
            self._reduce_plans[shape] = plan
            self.plan_cache_misses += 1
        else:
            self.plan_cache_hits += 1
        saturating = self.fmt.overflow == "saturate"
        bounds = None
        if saturating and cur.size and self.fast_path:
            bounds = _lane_minmax(cur, lane_axis=1)
        exact = self.mode.adder.is_exact
        lo_w, hi_w = self._signed_lo, self._signed_hi
        last = len(plan.levels) - 1
        for i, (half, odd) in enumerate(plan.levels):
            folded = self._add_words(
                cur[:half],
                cur[half : 2 * half],
                bounds_a=bounds,
                bounds_b=bounds,
                lane_axis=1,
            )
            if odd:
                nxt = plan.buf[: half + 1]
                nxt[half] = cur[2 * half]
                nxt[:half] = folded
                cur = nxt
            else:
                cur = folded
            if bounds is not None and i < last:
                if exact:
                    lo = np.maximum(bounds[0] + bounds[0], lo_w)
                    hi = np.minimum(bounds[1] + bounds[1], hi_w)
                    if odd:
                        lo = np.minimum(lo, bounds[0])
                        hi = np.maximum(hi, bounds[1])
                    bounds = (lo, hi)
                else:
                    bounds = _lane_minmax(cur, lane_axis=1)
        return cur[0]

    # ------------------------------------------------------------------
    # Public kernels (lane axis leading)
    # ------------------------------------------------------------------
    def add(self, a, b, *, resident: bool = False):
        """Elementwise ``a + b`` per lane; shared operands broadcast."""
        qa, bounds_a = self._coerce(a)
        qb, bounds_b = self._coerce(b)
        if qa.shape != qb.shape:
            qa, qb = np.broadcast_arrays(qa, qb)
        out = self._add_words(qa, qb, bounds_a=bounds_a, bounds_b=bounds_b)
        return self._emit(out, resident)

    def sub(self, a, b, *, resident: bool = False):
        """Elementwise ``a - b`` per lane (two's-complement negation)."""
        if isinstance(b, LaneStack):
            self._check_fmt(b)
            neg = self.fmt.handle_overflow(-b.words)
            bounds = b.lane_bounds()
            lo = hi = None
            if bounds is not None and bool(np.all(bounds[0] > self._signed_lo)):
                lo, hi = -bounds[1], -bounds[0]
            return self.add(
                a, LaneStack(neg, self.fmt, lo=lo, hi=hi), resident=resident
            )
        if isinstance(b, ResidentVector):
            self._check_fmt(b)
            neg = self.fmt.handle_overflow(-b.words)
            bounds = b.bounds()
            if bounds is not None and bounds[0] > self._signed_lo:
                bounds = (-bounds[1], -bounds[0])
            else:
                bounds = None
            return self.add(
                a, ResidentVector(neg, self.fmt, bounds), resident=resident
            )
        return self.add(a, -np.asarray(b, dtype=np.float64), resident=resident)

    def scale_add(self, x, alpha, d, *, resident: bool = False):
        """Per-lane update rule ``x + alpha * d``.

        ``alpha`` may be a scalar or a per-lane ``(L,)`` array; a lane's
        row is scaled by exactly the float multiply a solo run performs.
        """
        df = self._to_float(d)
        alpha = np.asarray(alpha, dtype=np.float64)
        if alpha.ndim == 1:
            alpha = alpha.reshape((-1,) + (1,) * (df.ndim - 1))
        return self.add(x, alpha * df, resident=resident)

    def sum(
        self,
        x,
        axis: int | None = None,
        *,
        resident: bool = False,
        assume_finite: bool = False,
    ):
        """Per-lane tree reduction.

        ``axis`` indexes each lane's shape (the lane axis is implicit
        and always survives); ``axis=None`` flattens each lane and
        returns a per-lane float array of shape ``(L,)``.
        """
        scalar = axis is None
        if isinstance(x, LaneStack):
            self._check_fmt(x)
            q = x.words
        else:
            q = self.fmt.encode(
                np.asarray(x, dtype=np.float64), assume_finite=assume_finite
            )
        if self.lane_ids is None:
            raise RuntimeError("call select_lanes() before issuing kernels")
        if q.ndim < 2 or q.shape[0] != self.lane_ids.shape[0]:
            raise ValueError(
                f"batched sum needs a leading lane axis of "
                f"{self.lane_ids.shape[0]}, got shape {q.shape}"
            )
        if scalar:
            q = q.reshape(q.shape[0], -1)
            red_axis = 1
        else:
            if axis < 0:
                axis += q.ndim - 1
            red_axis = axis + 1
        if q.shape[red_axis] == 0:
            out = np.zeros(tuple(np.delete(q.shape, red_axis)))
            if scalar:
                return out.reshape(q.shape[0])
            return self._emit(self.fmt.encode(out), resident)
        reduced = self._reduce_words(np.moveaxis(q, red_axis, 0))
        if scalar:
            return self.fmt.decode(reduced)
        return self._emit(reduced, resident)

    def dot(self, a, b) -> np.ndarray:
        """Per-lane inner products → ``(L,)`` floats."""
        af = self._to_float(a)
        bf = self._to_float(b)
        af = af.reshape(af.shape[0], -1)
        bf = bf.reshape(bf.shape[0], -1)
        if af.shape != bf.shape:
            raise ValueError(f"dot shape mismatch: {af.shape} vs {bf.shape}")
        return self.sum(af * bf)

    def _trusted_product(
        self, constant: ResidentMatrix, varying: np.ndarray
    ) -> bool:
        """Any-lane version of :meth:`ApproxEngine._trusted_product`:
        one global bound over the whole stack (sound per lane, and the
        emitted words are identical with or without the trust)."""
        if not self.fast_path:
            return False
        if varying.size == 0:
            return True
        if not np.all(np.isfinite(varying)):
            raise ValueError("cannot encode non-finite values into fixed point")
        bound = constant.abs_max * float(np.abs(varying).max())
        return bool(np.isfinite(bound))

    def _sparse_matvec_words(
        self, sp: SparseResidentMatrix, xs: np.ndarray
    ) -> np.ndarray:
        """Lane-stacked ``sp @ xs[lane]`` as words: the batched twin of
        :meth:`ApproxEngine._sparse_matvec_words`.  Each bucket's
        ``(B, g, L)`` product gather is reduced as an ``(L, B, g)`` slab
        through the lane-aware :meth:`_reduce_words` (``lane_axis=1``
        inside), so every lane slice walks the identical tree — and
        draws the identical charges — as a solo engine on that lane."""
        products = sp.data[np.newaxis, :] * xs[:, sp.indices]
        trusted = self._trusted_product(sp, xs)
        q = self.fmt.encode(products, assume_finite=trusted)
        plan = sp.row_plan() if self.fast_path else SparseReductionPlan(sp.indptr)
        out = np.zeros((xs.shape[0], sp.shape[0]), dtype=np.int64)
        for _length, rows, gather in plan.buckets:
            out[:, rows] = self._reduce_words(np.moveaxis(q[:, gather], 2, 0))
        return out

    def matvec(self, matrix, x, *, resident: bool = False):
        """Shared ``matrix @ x[lane]`` for every lane of a ``(L, N)``
        stack, with approximate row accumulation.  Sparse operands
        route through the per-row segment reduction, as in the solo
        engine."""
        trusted = False
        if isinstance(matrix, SparseResidentMatrix):
            xs = self._to_float(x)
            if xs.ndim != 2 or matrix.shape[1] != xs.shape[1]:
                raise ValueError(
                    f"batched matvec shape mismatch: {matrix.shape} vs {xs.shape}"
                )
            return self._emit(self._sparse_matvec_words(matrix, xs), resident)
        if isinstance(matrix, ResidentMatrix):
            mat = matrix.array
            pinned = matrix
        else:
            mat = np.asarray(matrix, dtype=np.float64)
            pinned = None
        xs = self._to_float(x)
        if xs.ndim != 2 or mat.ndim != 2 or mat.shape[1] != xs.shape[1]:
            raise ValueError(
                f"batched matvec shape mismatch: {mat.shape} vs {xs.shape}"
            )
        if pinned is not None:
            trusted = self._trusted_product(pinned, xs)
        products = mat[np.newaxis, :, :] * xs[:, np.newaxis, :]
        return self.sum(products, axis=1, resident=resident, assume_finite=trusted)

    def weighted_sum(self, weights, points, *, resident: bool = False):
        """Per-lane ``sum_i weights[lane, i] * points[i]`` over shared
        rows of ``points``.  Sparse operands reduce through the cached
        transpose, as in the solo engine."""
        trusted = False
        if isinstance(points, SparseResidentMatrix):
            w = self._to_float(weights)
            if w.ndim != 2 or points.shape[0] != w.shape[1]:
                raise ValueError(
                    f"batched weighted_sum shape mismatch: {w.shape} vs {points.shape}"
                )
            return self._emit(
                self._sparse_matvec_words(points.transpose(), w), resident
            )
        if isinstance(points, ResidentMatrix):
            pts = points.array
            pinned = points
        else:
            pts = self._to_float(points)
            pinned = None
        w = self._to_float(weights)
        if w.ndim != 2 or pts.ndim != 2 or pts.shape[0] != w.shape[1]:
            raise ValueError(
                f"batched weighted_sum shape mismatch: {w.shape} vs {pts.shape}"
            )
        if pinned is not None:
            trusted = self._trusted_product(pinned, w)
        products = w[:, :, np.newaxis] * pts[np.newaxis, :, :]
        return self.sum(products, axis=0, resident=resident, assume_finite=trusted)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip values through the datapath format (no energy)."""
        return self.fmt.quantize(np.asarray(x, dtype=np.float64))

    def describe(self) -> str:
        """One-line description of the engine configuration."""
        return (
            f"BatchedEngine(mode={self.mode.name}, "
            f"adder={self.mode.adder.describe()}, fmt={self.fmt.describe()})"
        )
