"""Quality-configurable approximation modes.

The paper's experimental platform is a quality-configurable system (QCS)
with four approximate-adder accuracy levels plus a fully accurate mode:
``Level = {level1, ..., level4}`` where a *larger* index means *higher*
accuracy, and ``acc`` denotes the exact design.  A :class:`ModeBank`
holds that ordered ladder together with each mode's energy per addition,
and is the single object strategies consult when escalating or selecting
modes.

:func:`default_mode_bank` builds the ladder the experiments use —
lower-part-OR adders with a shrinking approximate region — but any adder
family from :mod:`repro.hardware.adders` can be substituted
(:func:`family_mode_bank`), reproducing the paper's remark that the
framework "is also applicable to other approximate component designs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.hardware.adders import AdderModel, ExactAdder, build_adder
from repro.hardware.energy import EnergyModel

#: Canonical mode names, least accurate first, matching the paper.
LEVEL_NAMES = ("level1", "level2", "level3", "level4")
ACCURATE_NAME = "acc"


@dataclass(frozen=True)
class ApproxMode:
    """One rung of the accuracy ladder.

    Attributes:
        name: display name (``level1`` .. ``level4`` or ``acc``).
        index: position in the ladder, 0 = least accurate.
        adder: the bit-level adder model implementing this mode.
        energy_per_add: energy units charged per elementary addition,
            normalized so the accurate mode costs 1.0.
    """

    name: str
    index: int
    adder: AdderModel
    energy_per_add: float

    @property
    def is_accurate(self) -> bool:
        return self.adder.is_exact

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class ModeBank:
    """An ordered ladder of approximation modes, least accurate first.

    The last mode must be exact (the ``acc`` mode); strategies rely on
    the invariant that escalating far enough always reaches it.
    """

    def __init__(self, modes: Sequence[ApproxMode]):
        if not modes:
            raise ValueError("a ModeBank needs at least one mode")
        if not modes[-1].is_accurate:
            raise ValueError("the last (highest) mode must be exact")
        for i, mode in enumerate(modes):
            if mode.index != i:
                raise ValueError(
                    f"mode {mode.name!r} has index {mode.index}, expected {i}"
                )
        names = [m.name for m in modes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate mode names: {names}")
        widths = {m.adder.width for m in modes}
        if len(widths) != 1:
            raise ValueError(f"all modes must share one width, got {widths}")
        self._modes = tuple(modes)
        self._by_name = {m.name: m for m in modes}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._modes)

    def __iter__(self) -> Iterator[ApproxMode]:
        return iter(self._modes)

    def __getitem__(self, index: int) -> ApproxMode:
        return self._modes[index]

    def by_name(self, name: str) -> ApproxMode:
        """Look a mode up by name.

        Raises:
            KeyError: with the known names listed, if absent.
        """
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(m.name for m in self._modes)
            raise KeyError(f"unknown mode {name!r}; known: {known}") from None

    @property
    def lowest(self) -> ApproxMode:
        """The least accurate (cheapest) mode."""
        return self._modes[0]

    @property
    def accurate(self) -> ApproxMode:
        """The exact mode (always the last rung)."""
        return self._modes[-1]

    @property
    def approximate_modes(self) -> tuple[ApproxMode, ...]:
        """All modes except the exact one."""
        return self._modes[:-1]

    @property
    def width(self) -> int:
        """Shared datapath word width."""
        return self._modes[0].adder.width

    # ------------------------------------------------------------------
    # Ladder navigation
    # ------------------------------------------------------------------
    def escalate(self, mode: ApproxMode) -> ApproxMode:
        """The adjacent mode with higher accuracy (identity at the top)."""
        return self._modes[min(mode.index + 1, len(self._modes) - 1)]

    def deescalate(self, mode: ApproxMode) -> ApproxMode:
        """The adjacent mode with lower accuracy (identity at the bottom)."""
        return self._modes[max(mode.index - 1, 0)]

    def energy_vector(self) -> list[float]:
        """Energy per add of every mode, ladder order."""
        return [m.energy_per_add for m in self._modes]

    def names(self) -> list[str]:
        """Mode names in ladder order."""
        return [m.name for m in self._modes]

    # ------------------------------------------------------------------
    # Config serialization: platform descriptions live in config files
    # in a real deployment, not in code.
    # ------------------------------------------------------------------
    def to_config(self) -> dict:
        """Plain-data (JSON-ready) description of the ladder.

        Only the constructor-level facts are stored (family + params);
        energies are re-derived on load, so a config written by one
        energy-model version stays consistent under another.
        """
        entries = []
        for mode in self._modes:
            adder = mode.adder
            params = {
                key: getattr(adder, key)
                for key in (
                    "approx_bits",
                    "segment_bits",
                    "lookback_bits",
                    "result_bits",
                    "previous_bits",
                    "fill",
                )
                if hasattr(adder, key)
            }
            entries.append(
                {"name": mode.name, "family": adder.family, "params": params}
            )
        return {"width": self.width, "modes": entries}

    @classmethod
    def from_config(cls, config: dict) -> "ModeBank":
        """Rebuild a bank from :meth:`to_config` output.

        Raises:
            ValueError / KeyError: on malformed configs or unknown
                adder families.
        """
        from repro.hardware.adders import build_adder
        from repro.hardware.energy import EnergyModel

        try:
            width = int(config["width"])
            entries = config["modes"]
        except KeyError as missing:
            raise ValueError(f"bank config is missing field {missing}") from None
        if not entries:
            raise ValueError("bank config lists no modes")
        adders = [
            build_adder(entry["family"], width, **entry.get("params", {}))
            for entry in entries
        ]
        names = [entry["name"] for entry in entries]
        model = EnergyModel()
        exact_cost = model.energy_per_add(adders[-1])
        modes = [
            ApproxMode(
                name=name,
                index=i,
                adder=adder,
                energy_per_add=model.energy_per_add(adder) / exact_cost,
            )
            for i, (name, adder) in enumerate(zip(names, adders))
        ]
        return cls(modes)


def _bank_from_adders(adders: Sequence[AdderModel], names: Sequence[str]) -> ModeBank:
    energy_model = EnergyModel()
    exact_cost = energy_model.energy_per_add(adders[-1])
    modes = [
        ApproxMode(
            name=name,
            index=i,
            adder=adder,
            energy_per_add=energy_model.energy_per_add(adder) / exact_cost,
        )
        for i, (name, adder) in enumerate(zip(names, adders))
    ]
    return ModeBank(modes)


def default_mode_bank(width: int = 32) -> ModeBank:
    """The paper-shaped ladder: four LOA levels plus the exact mode.

    The approximate lower-part widths shrink from ``level1`` to
    ``level4`` so that accuracy rises and energy rises with the level
    index, matching the paper's platform.
    """
    approx_bits = _default_approx_bits(width)
    adders: list[AdderModel] = [
        build_adder("loa", width, approx_bits=k) for k in approx_bits
    ]
    adders.append(ExactAdder(width))
    return _bank_from_adders(adders, list(LEVEL_NAMES) + [ACCURATE_NAME])


def _default_approx_bits(width: int) -> list[int]:
    """Approximate lower-part widths for the four levels at ``width``."""
    # At width 32: 20 / 14 / 8 / 4 approximate bits for levels 1..4.
    fractions = (0.625, 0.4375, 0.25, 0.125)
    bits = [max(1, min(width - 2, round(width * f))) for f in fractions]
    # Guarantee strict monotonicity even at tiny widths.
    for i in range(1, len(bits)):
        bits[i] = min(bits[i], bits[i - 1] - 1)
        if bits[i] < 0:
            raise ValueError(f"width {width} too small for a four-level ladder")
    return bits


def family_mode_bank(family: str, width: int = 32) -> ModeBank:
    """A four-level ladder built from an alternative adder family.

    Supported families: ``loa``, ``truncated`` (parameterized by
    approximate lower bits), ``etaii`` (segment size), ``aca`` (look-back
    window), ``gear`` (previous bits at fixed result bits).  Used by the
    adder-family ablation benchmark.
    """
    if family == "loa":
        return default_mode_bank(width)
    if family == "truncated":
        adders: list[AdderModel] = [
            build_adder("truncated", width, approx_bits=k)
            for k in _default_approx_bits(width)
        ]
    elif family == "etaii":
        segments = [
            max(2, width // 11),
            max(3, width // 8),
            max(4, width // 5),
            max(5, width // 4),
        ]
        adders = [build_adder("etaii", width, segment_bits=s) for s in segments]
    elif family == "aca":
        windows = [
            max(2, width // 16),
            max(3, width // 11),
            max(4, width // 8),
            max(5, width // 5),
        ]
        adders = [build_adder("aca", width, lookback_bits=w) for w in windows]
    elif family == "gear":
        previous = [
            max(1, width // 11),
            max(2, width // 6),
            max(3, width // 4),
            max(4, (3 * width) // 8),
        ]
        adders = [
            build_adder("gear", width, result_bits=max(2, width // 8), previous_bits=p)
            for p in previous
        ]
    else:
        raise KeyError(f"no ladder recipe for adder family {family!r}")
    adders.append(ExactAdder(width))
    return _bank_from_adders(adders, list(LEVEL_NAMES) + [ACCURATE_NAME])
