"""Fixed-point datapath and the approximate execution engine.

This package is the bridge between the bit-level hardware models of
:mod:`repro.hardware` and the floating-point world of the iterative
methods in :mod:`repro.solvers` / :mod:`repro.apps`:

* :class:`FixedPointFormat` — a Q-format two's-complement encoding that
  converts float tensors to machine words and back;
* :class:`ApproxEngine` — executes additions, reductions, dot products
  and matrix-vector products *through* a chosen adder model, charging
  every elementary addition to an :class:`EnergyLedger`;
* :class:`ResidentVector` — fixed-point words kept resident between
  chained engine kernels (pass ``resident=True`` to any kernel);
* :class:`ResidentMatrix` — a pinned multiplicative constant whose
  products skip the per-call finiteness scan (``engine.pin_matrix``);
* :class:`SparseResidentMatrix` / :class:`SparseReductionPlan` — the
  CSR sparse operand and its per-row segment-reduce schedule: matvec /
  weighted_sum accumulate each output row's own nnz products through
  the approximate adder (``nnz_i - 1`` adds per row);
* :class:`BatchedEngine` / :class:`LaneStack` /
  :class:`BatchedEnergyLedger` — the lock-step lane-parallel variant:
  one kernel call advances a whole stack of independent workloads with
  bit-identical per-lane results and exact per-lane energy accounting;
* :class:`ProgramEngine` / :class:`IterationProgram` — CUDA-graph-style
  capture/replay for the solo online loop: one interpreted iteration is
  recorded into a compiled program that later iterations replay with
  bit-identical iterates and a float-equal energy ledger
  (:mod:`repro.arith.program`);
* :mod:`repro.arith.modes` — the quality-configurable mode registry
  (``level1`` .. ``level4`` + ``accurate``) mirroring the paper's
  experimental platform.
"""

from repro.arith.engine import (
    ApproxEngine,
    BatchedEnergyLedger,
    BatchedEngine,
    EnergyLedger,
    LaneStack,
    ReductionPlan,
    ResidentMatrix,
    ResidentVector,
    SparseReductionPlan,
    SparseResidentMatrix,
)
from repro.arith.fixed import FixedPointFormat
from repro.arith.modes import ApproxMode, ModeBank, default_mode_bank
from repro.arith.program import (
    IterationProgram,
    ProgramEngine,
    ProgramExecutor,
    ProgramRecorder,
)

__all__ = [
    "ApproxEngine",
    "ApproxMode",
    "BatchedEnergyLedger",
    "BatchedEngine",
    "EnergyLedger",
    "FixedPointFormat",
    "IterationProgram",
    "LaneStack",
    "ModeBank",
    "ProgramEngine",
    "ProgramExecutor",
    "ProgramRecorder",
    "ReductionPlan",
    "ResidentMatrix",
    "ResidentVector",
    "SparseReductionPlan",
    "SparseResidentMatrix",
    "default_mode_bank",
]
