"""Iteration-program capture & replay for the solo online loop.

An iterative method walks the *same* :class:`~repro.arith.ApproxEngine`
op sequence every iteration at a fixed mode: the op kinds, operand
shapes, reduction geometries and per-op ledger charges are all
structure, not data.  Re-deriving that structure through Python dispatch
every iteration — ``_coerce`` type switches, finiteness and saturation
prechecks, plan lookups, one ledger call per elementary op — is where
the solo end-to-end path loses its time (see ``docs/performance.md``).

This module captures that structure once and replays it, CUDA-graph
style:

* :class:`ProgramRecorder` — during ONE fully interpreted iteration,
  records every top-level engine call (kind, operand identities —
  cached constants or iteration-varying slots — shapes, reduction
  plans, saturation-precheck outcomes, and the exact per-op
  ``(mode, n_adds, energy_per_add)`` charges) into an
  :class:`IterationProgram`;
* :class:`ProgramExecutor` — replays subsequent iterations by driving
  the vectorized kernels directly: operands resolve through compiled
  identity checks, reduction plans and broadcast decisions are
  precomputed, saturation prechecks reuse cached bounds, and the whole
  iteration's charges flush through a single ordered
  :meth:`~repro.arith.engine.EnergyLedger.charge_many` call;
* :class:`ProgramEngine` — an :class:`ApproxEngine` subclass hosting
  the record/replay state machine behind the same public kernel API, so
  solvers need no changes.

Contract (the repo's established one): a replayed iteration produces
**bit-identical** words/iterates and an energy ledger **equal as
floats** to the interpreted execution — every compiled step either
reproduces the interpreted arithmetic exactly or raises a bailout that
re-runs the call interpreted.  ``tests/core/test_program_parity.py``
asserts this across every solver × strategy.

Bailouts (structure divergence drops the program; the iteration
finishes interpreted and the next one re-records):

* operand shape or kind change (``"shape"`` / ``"operand"``);
* an op sequence that no longer matches the program (``"structure"`` /
  ``"shorter-iteration"``);
* an add whose recorded saturation precheck said "in range" now
  overflowing (``"saturation"``);
* mode reconfigurations and function-scheme rollbacks invalidate
  programs up front (driven by :class:`~repro.core.framework.ApproxIt`),
  so the retried/reconfigured iteration re-records.

The interpreted path stays byte-for-byte untouched as the regression
oracle: a ``ProgramEngine`` with capture off (or ``fast_path=False``)
*is* the plain engine.
"""

from __future__ import annotations

import numpy as np

from repro.arith.engine import (
    ApproxEngine,
    BatchedEngine,
    LaneStack,
    ReductionPlan,
    ResidentMatrix,
    ResidentVector,
    SparseResidentMatrix,
)

_IDLE = "idle"
_RECORD = "record"
_REPLAY = "replay"
_BAILED = "bailed"

_NONFINITE_MSG = "cannot encode non-finite values into fixed point"


class ProgramBailout(Exception):
    """A compiled step met input the program was not recorded for.

    Raised inside replay and caught by :class:`ProgramEngine`, which
    drops the program and re-runs the call (and the rest of the
    iteration) interpreted.  ``reason`` is a short tag surfaced in the
    ``program_bailout`` trace event.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# Operand resolvers (compiled at capture close)
# ----------------------------------------------------------------------
def _is_slot(operand, arr, slots) -> bool:
    """Whether the operand is a declared iteration-varying slot."""
    for obj in slots.values():
        if operand is obj or arr is obj:
            return True
    return False


def _word_operand(engine, operand, slots, negate=False):
    """Compile a resolver: operand -> ``(words, bounds)``.

    Mirrors what ``_coerce`` (plus ``sub``'s negation) produces for the
    operand kind seen at capture:

    * :class:`ResidentVector` — resolved by value every iteration
      (format and shape checked; cached word bounds ride along);
    * a declared slot — always re-encoded (finiteness-checked, exactly
      like the interpreted encode);
    * anything else — *maybe-constant*: the capture-time encoding is
      cached and returned on an ``is``-identity hit, any other
      same-shaped array re-encodes fresh.  Identity keying matches the
      ``pin`` convention: arrays fed to the engine are immutable —
      mutate-in-place operands must be declared via
      ``IterativeMethod.replay_operands``.
    """
    fmt = engine.fmt
    signed_lo = engine._signed_lo
    if isinstance(operand, ResidentVector):
        shape = operand.words.shape
        if negate:

            def resolve(op):
                if (
                    not isinstance(op, ResidentVector)
                    or op.fmt != fmt
                    or op.words.shape != shape
                ):
                    raise ProgramBailout("operand")
                words = fmt.handle_overflow(-op.words)
                bounds = op.bounds()
                if bounds is not None and bounds[0] > signed_lo:
                    return words, (-bounds[1], -bounds[0])
                return words, None

        else:

            def resolve(op):
                if (
                    not isinstance(op, ResidentVector)
                    or op.fmt != fmt
                    or op.words.shape != shape
                ):
                    raise ProgramBailout("operand")
                return op.words, op.bounds()

        return resolve

    arr = np.asarray(operand, dtype=np.float64)
    shape = arr.shape
    if _is_slot(operand, arr, slots):

        def resolve(op):
            if isinstance(op, ResidentVector):
                raise ProgramBailout("operand")
            a = np.asarray(op, dtype=np.float64)
            if a.shape != shape:
                raise ProgramBailout("shape")
            return fmt.encode(-a if negate else a), None

        return resolve

    obj = operand if isinstance(operand, np.ndarray) else arr
    words = fmt.encode(-arr if negate else arr)
    bounds = (int(words.min()), int(words.max())) if words.size else None

    def resolve(op):
        if op is obj:
            return words, bounds
        if isinstance(op, ResidentVector):
            raise ProgramBailout("operand")
        a = np.asarray(op, dtype=np.float64)
        if a.shape != shape:
            raise ProgramBailout("shape")
        return fmt.encode(-a if negate else a), None

    return resolve


def _float_operand(engine, operand, slots):
    """Compile a resolver: operand -> float array (``_to_float``)."""
    fmt = engine.fmt
    if isinstance(operand, ResidentVector):
        shape = operand.words.shape

        def resolve(op):
            if (
                not isinstance(op, ResidentVector)
                or op.fmt != fmt
                or op.words.shape != shape
            ):
                raise ProgramBailout("operand")
            return op.decode()

        return resolve

    arr = np.asarray(operand, dtype=np.float64)
    shape = arr.shape
    if _is_slot(operand, arr, slots):

        def resolve(op):
            if isinstance(op, ResidentVector):
                raise ProgramBailout("operand")
            a = np.asarray(op, dtype=np.float64)
            if a.shape != shape:
                raise ProgramBailout("shape")
            return a

        return resolve

    obj = operand if isinstance(operand, np.ndarray) else arr

    def resolve(op):
        if op is obj:
            return arr
        if isinstance(op, ResidentVector):
            raise ProgramBailout("operand")
        a = np.asarray(op, dtype=np.float64)
        if a.shape != shape:
            raise ProgramBailout("shape")
        return a

    return resolve


def _matrix_operand(engine, operand, slots):
    """Compile a resolver: operand -> ``(float array, abs_max, strict)``.

    ``abs_max`` is a proven-finite absolute bound enabling the trusted
    (scan-skipping) product encode; ``None`` means the replay must run
    the full checked encode, exactly as the interpreted call would.
    ``strict`` marks a :class:`ResidentMatrix` — there the interpreted
    path itself runs ``_trusted_product`` (which *raises* on a
    non-finite varying operand), so the replay must replicate that
    contract exactly; for an identity-hit plain constant the interpreted
    path is a checked encode, so the bound is only an optimisation and
    must never raise where the checked encode would not.
    """
    if isinstance(operand, ResidentMatrix):
        obj = operand
        shape = operand.array.shape

        def resolve(op):
            if op is obj:
                return obj.array, obj.abs_max, True
            if isinstance(op, ResidentMatrix) and op.array.shape == shape:
                return op.array, op.abs_max, True
            raise ProgramBailout("operand")

        return resolve

    arr = np.asarray(operand, dtype=np.float64)
    shape = arr.shape
    if _is_slot(operand, arr, slots) or not np.all(np.isfinite(arr)):

        def resolve(op):
            if isinstance(op, ResidentMatrix):
                raise ProgramBailout("operand")
            a = np.asarray(op, dtype=np.float64)
            if a.shape != shape:
                raise ProgramBailout("shape")
            return a, None, False

        return resolve

    obj = operand if isinstance(operand, np.ndarray) else arr
    abs_max = float(np.abs(arr).max()) if arr.size else 0.0

    def resolve(op):
        if op is obj:
            return arr, abs_max, False
        if isinstance(op, ResidentMatrix):
            raise ProgramBailout("operand")
        a = np.asarray(op, dtype=np.float64)
        if a.shape != shape:
            raise ProgramBailout("shape")
        return a, None, False

    return resolve


# ----------------------------------------------------------------------
# Replay arithmetic (interpreted-identical, charge-free)
# ----------------------------------------------------------------------
def _replay_add_words(engine, qa, qb, bounds_a, bounds_b, sat_recorded):
    """One elementwise add, bit-identical to ``_add_words`` sans charge.

    The saturation precheck re-runs on the resolved bounds; ``needed``
    while the recording said "in range" is the unexpected
    saturation-bound violation — the numeric regime left the envelope
    the program was compiled for, so bail and re-record.  With an exact
    adder and an in-range proof the masked add collapses to ``np.add``
    (the wrapped sum *is* the true sum), skipping three masking passes.
    """
    if qa.shape != qb.shape:
        qa, qb = np.broadcast_arrays(qa, qb)
    lo, hi = engine._signed_lo, engine._signed_hi
    if engine.fmt.overflow == "saturate":
        if qa.size == 0 or qb.size == 0:
            needed = False
        else:
            if bounds_a is None:
                bounds_a = (int(qa.min()), int(qa.max()))
            if bounds_b is None:
                bounds_b = (int(qb.min()), int(qb.max()))
            needed = (
                bounds_a[0] + bounds_b[0] < lo or bounds_a[1] + bounds_b[1] > hi
            )
        if needed:
            if not sat_recorded:
                raise ProgramBailout("saturation")
            out = engine.backend.add_signed(engine.mode.adder, qa, qb)
            true = qa.astype(np.int64) + qb.astype(np.int64)
            overflowed = (true < lo) | (true > hi)
            if np.any(overflowed):
                out = np.where(overflowed, np.clip(true, lo, hi), out)
            return out
        if engine.mode.adder.is_exact:
            return engine.backend.add_words_inrange(qa, qb)
    return engine.backend.add_signed(engine.mode.adder, qa, qb)


def _replay_reduce(engine, q, plan, sat_recorded):
    """Tree-reduce axis 0, bit-identical to ``_reduce_words`` sans
    charges and plan lookups.

    Fast route: exact adder, saturating format, no saturation recorded,
    and one O(1) proof that *every* partial sum stays in the word —
    each intermediate is a sum of at most ``n`` of the inputs, so
    ``n * min(min_word, 0) >= lo`` and ``n * max(max_word, 0) <= hi``
    bound them all — fuses the whole tree into a single
    ``np.add.reduce``: in-range exact integer addition is associative,
    so any summation order yields bit-identical words.  Anything else
    walks the interpreted fold exactly (same adder calls, same
    per-level bounds carry, same clamps).
    """
    if q.shape[0] <= 1:
        return q[0]
    saturating = engine.fmt.overflow == "saturate"
    exact = engine.mode.adder.is_exact
    lo_w, hi_w = engine._signed_lo, engine._signed_hi
    if saturating and exact and not sat_recorded and q.size:
        m0 = int(q.min())
        m1 = int(q.max())
        n = q.shape[0]
        if n * min(m0, 0) >= lo_w and n * max(m1, 0) <= hi_w:
            return engine.backend.reduce_inrange(q)
        # Conservative proof failed; the tighter per-level walk below is
        # still interpreted-identical, just not fused.
    adder = engine.mode.adder
    backend = engine.backend
    cur = q
    bounds = None
    if saturating and cur.size:
        bounds = (int(cur.min()), int(cur.max()))
    last = len(plan.levels) - 1
    for i, (half, odd) in enumerate(plan.levels):
        qa = cur[:half]
        qb = cur[half : 2 * half]
        out = backend.add_signed(adder, qa, qb)
        if saturating:
            if qa.size == 0:
                needed = False
            elif bounds is None:
                b0 = (int(qa.min()), int(qa.max()))
                b1 = (int(qb.min()), int(qb.max()))
                needed = b0[0] + b1[0] < lo_w or b0[1] + b1[1] > hi_w
            else:
                needed = (
                    bounds[0] + bounds[0] < lo_w or bounds[1] + bounds[1] > hi_w
                )
            if needed:
                true = qa.astype(np.int64) + qb.astype(np.int64)
                overflowed = (true < lo_w) | (true > hi_w)
                if np.any(overflowed):
                    out = np.where(overflowed, np.clip(true, lo_w, hi_w), out)
        if odd:
            nxt = plan.buf[: half + 1]
            nxt[half] = cur[2 * half]
            nxt[:half] = out
            cur = nxt
        else:
            cur = out
        if bounds is not None and i < last:
            if exact:
                lo = max(bounds[0] + bounds[0], lo_w)
                hi = min(bounds[1] + bounds[1], hi_w)
                if odd:
                    lo = min(lo, bounds[0])
                    hi = max(hi, bounds[1])
                bounds = (lo, hi)
            else:
                bounds = (int(cur.min()), int(cur.max()))
    return cur[0]


def _get_plan(engine, shape) -> ReductionPlan | None:
    """The engine's cached plan for a reduce-input shape (created on
    first capture of that shape; shared with the interpreted path)."""
    if shape[0] <= 1:
        return None
    plan = engine._reduce_plans.get(shape)
    if plan is None:
        plan = ReductionPlan(shape)
        engine._reduce_plans[shape] = plan
    return plan


# ----------------------------------------------------------------------
# Compiled steps
# ----------------------------------------------------------------------
class _AddStep:
    """``add`` / ``sub`` (negation folded into the b-resolver)."""

    __slots__ = ("kind", "params", "charges", "sat", "res_a", "res_b", "resident")

    def __init__(self, kind, params, charges, sat, res_a, res_b):
        self.kind = kind
        self.params = params
        self.charges = charges
        self.sat = sat
        self.res_a = res_a
        self.res_b = res_b
        self.resident = params["resident"]

    def replay(self, engine, args):
        a, b = args
        qa, bounds_a = self.res_a(a)
        qb, bounds_b = self.res_b(b)
        out = _replay_add_words(engine, qa, qb, bounds_a, bounds_b, self.sat)
        return engine._emit(out, self.resident)


class _SubStep:
    """``sub`` with a resident-captured subtrahend: the negate pass is
    deferred until needed.

    The generic ``sub`` compile folds negation into the b-resolver —
    one ``handle_overflow(-words)`` pass (clip plus allocation) per
    call.  When the subtrahend's cached word bounds prove the negation
    clamp-free *and* the difference in range, the whole negate+add
    collapses to one :meth:`KernelBackend.sub_words_inrange`; otherwise
    the negation runs here, bit-identical to the folded resolver.
    """

    __slots__ = ("kind", "params", "charges", "sat", "res_a", "res_b", "resident")

    def __init__(self, params, charges, sat, res_a, res_b):
        self.kind = "sub"
        self.params = params
        self.charges = charges
        self.sat = sat
        self.res_a = res_a
        self.res_b = res_b
        self.resident = params["resident"]

    def replay(self, engine, args):
        a, b = args
        qa, bounds_a = self.res_a(a)
        qb, bounds_b = self.res_b(b)
        lo, hi = engine._signed_lo, engine._signed_hi
        if (
            not self.sat
            and bounds_b is not None
            and bounds_b[0] > lo
            and engine.mode.adder.is_exact
            and engine.fmt.overflow == "saturate"
            and qa.shape == qb.shape
            and qa.size
        ):
            if bounds_a is None:
                bounds_a = (int(qa.min()), int(qa.max()))
            if bounds_a[0] - bounds_b[1] >= lo and bounds_a[1] - bounds_b[0] <= hi:
                out = engine.backend.sub_words_inrange(qa, qb)
                return engine._emit(out, self.resident)
        # Negate exactly like the folded resolver would have.
        nwords = engine.fmt.handle_overflow(-qb)
        if bounds_b is not None and bounds_b[0] > lo:
            nbounds = (-bounds_b[1], -bounds_b[0])
        else:
            nbounds = None
        out = _replay_add_words(engine, qa, nwords, bounds_a, nbounds, self.sat)
        return engine._emit(out, self.resident)


class _ScaleAddStep:
    """``scale_add``: x + alpha*d with alpha live per call."""

    __slots__ = ("kind", "params", "charges", "sat", "res_x", "res_d", "resident", "bufs")

    def __init__(self, params, charges, sat, res_x, res_d):
        self.kind = "scale_add"
        self.params = params
        self.charges = charges
        self.sat = sat
        self.res_x = res_x
        self.res_d = res_d
        self.resident = params["resident"]
        self.bufs: dict = {}

    def replay(self, engine, args):
        x, alpha, d = args
        qa, bounds_a = self.res_x(x)
        fd = self.res_d(d)
        # Fused path: with alpha live the bound is one O(n) scan per
        # call — |rint(fl(alpha*fd_i)*scale)| <= W := rint(fl(|alpha| *
        # max|fd|)*scale) (fl and rint are monotone, the power-of-two
        # scale multiply is exact), so W <= hi proves the encode clip
        # (and finiteness scan — a non-finite operand lands peak at
        # NaN/inf and falls through to the checked encode, which raises
        # exactly like the interpreted call) a no-op, and the word-
        # bounds check proves the add in range.  Python-int arithmetic
        # throughout: a float compare could round past the boundary.
        if (
            not self.sat
            and fd.size
            and qa.size
            and np.ndim(alpha) == 0
            and engine.mode.adder.is_exact
            and engine.fmt.overflow == "saturate"
            and fd.shape == qa.shape
        ):
            if bounds_a is None:
                # The add-range check below needs these words scanned
                # anyway; computing them here just moves the scan ahead
                # of (and shares it with) the fusion proof.
                bounds_a = (int(qa.min()), int(qa.max()))
            peak = abs(float(alpha)) * float(np.abs(fd).max()) * engine.fmt.scale
            if np.isfinite(peak):
                w = int(np.rint(peak))
                lo, hi = engine._signed_lo, engine._signed_hi
                if (
                    w <= hi
                    and -w >= lo
                    and bounds_a[1] + w <= hi
                    and bounds_a[0] - w >= lo
                ):
                    qb = engine.backend.scale_encode_inrange(
                        fd, alpha, engine.fmt.scale, self.bufs
                    )
                    out = engine.backend.add_words_inrange(qa, qb)
                    return engine._emit(out, self.resident)
        qb = engine.fmt.encode(alpha * fd)
        out = _replay_add_words(engine, qa, qb, bounds_a, None, self.sat)
        return engine._emit(out, self.resident)


class _SumStep:
    """``sum`` over a non-empty axis."""

    __slots__ = (
        "kind",
        "params",
        "charges",
        "sat",
        "rv_shape",
        "arr_shape",
        "scalar",
        "axis",
        "assume_finite",
        "resident",
        "plan",
    )

    def __init__(self, engine, op, slots):
        (x,) = op.args
        self.kind = "sum"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        axis = op.params["axis"]
        self.scalar = axis is None
        self.assume_finite = op.params["assume_finite"]
        self.resident = op.params["resident"]
        if isinstance(x, ResidentVector):
            self.rv_shape = x.words.shape
            self.arr_shape = None
            qshape = x.words.shape
        else:
            self.rv_shape = None
            self.arr_shape = np.asarray(x, dtype=np.float64).shape
            qshape = self.arr_shape
        if self.scalar:
            qshape = (int(np.prod(qshape)),)
            axis = 0
        self.axis = axis
        rshape = np.moveaxis(np.empty(qshape, dtype=np.int64), axis, 0).shape
        self.plan = _get_plan(engine, rshape)

    def _words(self, engine, x):
        if self.rv_shape is not None:
            if (
                not isinstance(x, ResidentVector)
                or x.fmt != engine.fmt
                or x.words.shape != self.rv_shape
            ):
                raise ProgramBailout("operand")
            return x.words
        if isinstance(x, ResidentVector):
            raise ProgramBailout("operand")
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape != self.arr_shape:
            raise ProgramBailout("shape")
        return engine.fmt.encode(arr, assume_finite=self.assume_finite)

    def replay(self, engine, args):
        (x,) = args
        q = self._words(engine, x)
        if self.scalar:
            q = q.reshape(-1)
        reduced = _replay_reduce(
            engine, np.moveaxis(q, self.axis, 0), self.plan, self.sat
        )
        if self.scalar:
            return float(engine.fmt.decode(reduced))
        return engine._emit(reduced, self.resident)


class _ZeroSumStep:
    """``sum`` over an empty axis: the structural zero output."""

    __slots__ = ("kind", "params", "charges", "rv_shape", "arr_shape", "scalar", "out_words", "resident")

    def __init__(self, engine, op, slots, qshape, axis):
        (x,) = op.args
        self.kind = "sum"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.scalar = op.params["axis"] is None
        self.resident = op.params["resident"]
        if isinstance(x, ResidentVector):
            self.rv_shape = x.words.shape
            self.arr_shape = None
        else:
            self.rv_shape = None
            self.arr_shape = np.asarray(x, dtype=np.float64).shape
        out = np.zeros(np.delete(qshape, axis))
        self.out_words = engine.fmt.encode(out)

    def replay(self, engine, args):
        (x,) = args
        if self.rv_shape is not None:
            if (
                not isinstance(x, ResidentVector)
                or x.fmt != engine.fmt
                or x.words.shape != self.rv_shape
            ):
                raise ProgramBailout("operand")
        else:
            if isinstance(x, ResidentVector):
                raise ProgramBailout("operand")
            arr = np.asarray(x, dtype=np.float64)
            if arr.shape != self.arr_shape:
                raise ProgramBailout("shape")
            if not self.params["assume_finite"] and not np.all(np.isfinite(arr)):
                raise ValueError(_NONFINITE_MSG)
        if self.scalar:
            return 0.0
        return engine._emit(self.out_words, self.resident)


class _DotStep:
    """``dot``: exact products, approximate accumulation, scalar out."""

    __slots__ = ("kind", "params", "charges", "sat", "res_a", "res_b", "n", "plan")

    def __init__(self, engine, op, slots):
        a, b = op.args
        self.kind = "dot"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.res_a = _float_operand(engine, a, slots)
        self.res_b = _float_operand(engine, b, slots)
        fa = engine._to_float(a).reshape(-1)
        self.n = fa.shape[0]
        self.plan = _get_plan(engine, (self.n,))

    def replay(self, engine, args):
        a, b = args
        fa = self.res_a(a).reshape(-1)
        fb = self.res_b(b).reshape(-1)
        q = engine.fmt.encode(fa * fb)
        if self.n == 0:
            return 0.0
        reduced = _replay_reduce(engine, q, self.plan, self.sat)
        return float(engine.fmt.decode(reduced))


def _trusted_encode(engine, product, varying, abs_max, strict):
    """Encode a const × varying product, scan-skipping when provable.

    With a compile-proven-finite constant, one O(n) scan of the varying
    operand replaces the O(rows × cols) product scan.  ``strict`` (a
    :class:`ResidentMatrix` operand) replicates ``_trusted_product``
    verbatim — including its raise on a non-finite varying operand;
    otherwise the interpreted call was a checked encode, so the bound
    only *upgrades* provably-finite calls and every other case falls
    back to the checked encode unchanged.
    """
    if abs_max is None:
        return engine.fmt.encode(product)
    if strict:
        if varying.size == 0:
            trusted = True
        else:
            if not np.all(np.isfinite(varying)):
                raise ValueError(_NONFINITE_MSG)
            trusted = bool(np.isfinite(abs_max * float(np.abs(varying).max())))
        return engine.fmt.encode(product, assume_finite=trusted)
    if (
        product.size
        and varying.size
        and np.all(np.isfinite(varying))
        and np.isfinite(abs_max * float(np.abs(varying).max()))
    ):
        return engine.fmt.encode(product, assume_finite=True)
    return engine.fmt.encode(product)


def _fused_product_ok(engine, step, abs_max, varying, n) -> bool:
    """Whether a product-encode-reduce may run fully fused (clip-free
    single-pass) through :meth:`KernelBackend.product_reduce_words`.

    The proof is one O(len(varying)) scan:  with ``P = fl(abs_max *
    max|varying|)`` every element of the float product is bounded by
    ``P`` (real-product ordering survives rounding — ``fl`` is
    monotone), multiplying by the power-of-two ``scale`` is exact, and
    ``rint`` is monotone, so ``W = rint(P * scale)`` bounds every
    encoded word's magnitude.  ``W <= hi`` proves the encode clip a
    no-op; ``n * W <= hi`` (exact Python-int arithmetic — a float
    product could round below the true value) bounds every partial sum
    of the ``n``-term reduction, making the exact integer fold
    associative and hence bit-identical to the reference clip + tree.
    ``n * W < 2**53`` additionally keeps every partial sum (under any
    association) in float64's integer-exact range, licensing the
    backend to fold the integer-valued *float* buffer directly —
    automatic for word widths up to 53 bits, checked so wider formats
    fall back rather than round.
    Any failure — including a non-finite ``varying``, where the
    unfused path reproduces the interpreted raise/checked-encode
    behavior exactly — falls back to the unfused replay.
    """
    if (
        step.sat
        or abs_max is None
        or not varying.size
        or not engine.mode.adder.is_exact
        or engine.fmt.overflow != "saturate"
    ):
        return False
    peak = abs_max * float(np.abs(varying).max()) * engine.fmt.scale
    if not np.isfinite(peak):
        return False
    w = int(np.rint(peak))
    hi = engine._signed_hi
    return w <= hi and n * w <= hi and n * w < (1 << 53)


class _MatvecStep:
    """``matvec``: exact row products, approximate row accumulation."""

    __slots__ = ("kind", "params", "charges", "sat", "res_mat", "res_vec", "rows", "cols", "plan", "zero_words", "resident", "bufs")

    def __init__(self, engine, op, slots):
        matrix, vector = op.args
        self.kind = "matvec"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.res_mat = _matrix_operand(engine, matrix, slots)
        self.res_vec = _float_operand(engine, vector, slots)
        mat = np.asarray(matrix, dtype=np.float64)
        self.rows, self.cols = mat.shape
        self.plan = _get_plan(engine, (self.cols, self.rows))
        self.zero_words = (
            engine.fmt.encode(np.zeros(self.rows)) if self.cols == 0 else None
        )
        self.bufs: dict = {}

    def replay(self, engine, args):
        matrix, vector = args
        mat, abs_max, strict = self.res_mat(matrix)
        vec = self.res_vec(vector).reshape(-1)
        if self.cols == 0:
            return engine._emit(self.zero_words, self.resident)
        if _fused_product_ok(engine, self, abs_max, vec, self.cols):
            reduced = engine.backend.product_reduce_words(
                mat, vec[np.newaxis, :], engine.fmt.scale, 1, self.bufs
            )
            return engine._emit(reduced, self.resident)
        product = mat * vec[np.newaxis, :]
        q = _trusted_encode(engine, product, vec, abs_max, strict)
        reduced = _replay_reduce(engine, q.T, self.plan, self.sat)
        return engine._emit(reduced, self.resident)


class _WeightedSumStep:
    """``weighted_sum``: exact scaling, approximate accumulation."""

    __slots__ = ("kind", "params", "charges", "sat", "res_w", "res_pts", "n", "plan", "zero_words", "resident", "bufs")

    def __init__(self, engine, op, slots):
        weights, points = op.args
        self.kind = "weighted_sum"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.res_w = _float_operand(engine, weights, slots)
        self.res_pts = _matrix_operand(engine, points, slots)
        pts = np.asarray(points, dtype=np.float64)
        self.n = pts.shape[0]
        self.plan = _get_plan(engine, pts.shape)
        self.zero_words = (
            engine.fmt.encode(np.zeros(pts.shape[1:])) if self.n == 0 else None
        )
        self.bufs: dict = {}

    def replay(self, engine, args):
        weights, points = args
        w = self.res_w(weights).reshape(-1)
        pts, abs_max, strict = self.res_pts(points)
        if self.n == 0:
            return engine._emit(self.zero_words, self.resident)
        if _fused_product_ok(engine, self, abs_max, w, self.n):
            reduced = engine.backend.product_reduce_words(
                w[:, np.newaxis], pts, engine.fmt.scale, 0, self.bufs
            )
            return engine._emit(reduced, self.resident)
        product = w[:, np.newaxis] * pts
        q = _trusted_encode(engine, product, w, abs_max, strict)
        reduced = _replay_reduce(engine, q, self.plan, self.sat)
        return engine._emit(reduced, self.resident)


class _SparseMatvecStep:
    """Sparse ``matvec`` / ``weighted_sum``: exact products over the
    stored entries only, approximate per-row segment accumulation.

    The sparse operand resolves by identity alone: the segment plan is
    a function of the CSR ``indptr``, so — unlike the dense
    ``_matrix_operand`` — substituting a different same-shape matrix
    would silently change the reduction structure, and instead bails
    out (``"operand"``) to re-record.  ``weighted_sum`` compiles to the
    same step over the operand's cached transpose (the interpreted
    kernel reduces through exactly that object, so geometry and charge
    order match by construction).

    The fused route specializes the dense in-range proof to the per-row
    nnz bound: with ``W`` bounding every encoded product word,
    ``nnz_max * W <= hi`` and ``nnz_max * W < 2**53`` bound every
    partial sum of every row's segment, licensing the backend's
    single-pass :meth:`~repro.backends.base.KernelBackend.csr_matvec_words`.
    Otherwise each nnz-length bucket's ``(L, g)`` slab replays through
    :func:`_replay_reduce` with the recorded aggregate saturation flag.
    """

    __slots__ = (
        "kind",
        "params",
        "charges",
        "sat",
        "obj",
        "sp",
        "res_vec",
        "plans",
        "resident",
        "bufs",
    )

    def __init__(self, engine, op, slots, kind, operand, vec_arg, sp):
        self.kind = kind
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.obj = operand
        self.sp = sp
        self.res_vec = _float_operand(engine, vec_arg, slots)
        self.plans = tuple(
            (length, rows, gather, _get_plan(engine, (length, rows.shape[0])))
            for length, rows, gather in sp.row_plan().buckets
        )
        self.bufs: dict = {}

    def replay(self, engine, args):
        if self.kind == "matvec":
            operand, vec_arg = args
        else:
            vec_arg, operand = args
        if operand is not self.obj:
            raise ProgramBailout("operand")
        sp = self.sp
        vec = self.res_vec(vec_arg).reshape(-1)
        if sp.nnz_max and _fused_product_ok(
            engine, self, sp.abs_max, vec, sp.nnz_max
        ):
            out = engine.backend.csr_matvec_words(
                sp.data, sp.indices, sp.indptr, vec, engine.fmt.scale, self.bufs
            )
            return engine._emit(out, self.resident)
        products = sp.data * vec[sp.indices]
        q = _trusted_encode(engine, products, vec, sp.abs_max, True)
        out = np.zeros(sp.shape[0], dtype=np.int64)
        for _length, rows, gather, plan in self.plans:
            out[rows] = _replay_reduce(engine, q[gather].T, plan, self.sat)
        return engine._emit(out, self.resident)


class _RecordedOp:
    """One top-level engine call as seen while recording."""

    __slots__ = ("kind", "args", "params", "charges", "sat", "out")

    def __init__(self, kind, args, params):
        self.kind = kind
        self.args = args
        self.params = params
        self.charges: list[tuple[str, int, float]] = []
        self.sat: list[bool] = []
        self.out = None


class _ChainTail:
    """A chained op: every arg is either an earlier op's output or an
    identity-stable literal, so the whole call is predictable at the
    chain head's dispatch.

    ``srcs`` holds one ``(is_op, value)`` pair per arg position:
    ``(True, k)`` reads op ``k``'s output this iteration, ``(False,
    obj)`` predicts the capture-time operand object (pinned residents
    and constant arrays are identity-stable by the engine's pin
    convention; anything else — e.g. a live float ``alpha`` — makes the
    op unchainable).
    """

    __slots__ = ("index", "srcs")

    def __init__(self, index, srcs):
        self.index = index
        self.srcs = srcs


class _Chain:
    """One dataflow chain: a head op plus the tail ops it feeds.

    ``fused`` is the backend's optional compiled form (see
    :meth:`~repro.backends.base.KernelBackend.compile_chain`): a
    callable ``fn(engine, results) -> [(tail_index, pred_args, out),
    ...]`` replacing the generic stepwise speculation.  ``None`` runs
    the tails through their compiled steps one by one — still a single
    Python dispatch entry for the whole chain.
    """

    __slots__ = ("root", "tails", "fused")

    def __init__(self, root):
        self.root = root
        self.tails: list[int] = []
        self.fused = None


_PREDICTABLE = (
    np.ndarray,
    ResidentVector,
    ResidentMatrix,
    SparseResidentMatrix,
    LaneStack,
)


def _link_chains(ops, steps, backend):
    """Link recorded ops into dataflow chains by output identity.

    An op whose args are all either (a) ``is``-identical to an earlier
    op's recorded output or (b) identity-stable literals joins the
    chain rooted at its latest op-source (transitively: a tail feeding
    another tail keeps one root).  At replay the whole chain executes
    speculatively inside the head's dispatch — one Python entry per
    chain — and each tail's own dispatch merely verifies the predicted
    operand identities and serves the memoized result; any mismatch
    (changed dataflow) recomputes that op through its compiled step, so
    chaining never changes results, only entry count.
    """
    out_index: dict[int, int] = {}
    roots: dict[int, int] = {}
    chains: dict[int, _Chain] = {}
    tails: dict[int, _ChainTail] = {}
    for i, op in enumerate(ops):
        srcs = []
        last_src = -1
        predictable = True
        for a in op.args:
            j = out_index.get(id(a))
            if j is not None and a is ops[j].out:
                srcs.append((True, j))
                if j > last_src:
                    last_src = j
            elif isinstance(a, _PREDICTABLE):
                srcs.append((False, a))
            else:
                predictable = False
                break
        if predictable and last_src >= 0:
            root = roots.get(last_src, last_src)
            chain = chains.get(root)
            if chain is None:
                chain = chains[root] = _Chain(root)
            chain.tails.append(i)
            tails[i] = _ChainTail(i, tuple(srcs))
            roots[i] = root
        if isinstance(op.out, _PREDICTABLE):
            out_index[id(op.out)] = i
    for chain in chains.values():
        chain.fused = backend.compile_chain(
            tuple(steps[t] for t in (chain.root, *chain.tails))
        )
    return chains, tails


def _speculate_chain(engine, executor, program, chain):
    """Execute a chain's tails ahead of their dispatches (called from
    the head's dispatch, right after the head step replayed).

    Results land in the executor's memo keyed by program index,
    together with the exact predicted-arg tuple the tail dispatch must
    verify by identity.  Speculation is side-effect-free with respect
    to the ledger — charges append only when the real dispatch serves
    the memo — and aborts silently on *any* failure (bailout, raise,
    missing source): the affected tails simply replay normally at their
    own dispatches, where errors surface at the interpreted call site.
    """
    results = executor.results
    memo = executor.memo
    try:
        if chain.fused is not None:
            served = chain.fused(engine, results)
            if served is not None:
                for t, pred_args, out in served:
                    memo[t] = (pred_args, out)
                return
        for t in chain.tails:
            tail = program.tails[t]
            args = []
            for is_op, val in tail.srcs:
                if is_op:
                    hit = memo.get(val)
                    val = hit[1] if hit is not None else results[val]
                    if val is None:
                        return
                args.append(val)
            args = tuple(args)
            out = program.steps[t].replay(engine, args)
            memo[t] = (args, out)
    except Exception:
        return


def _compile_add(engine, op, slots):
    a, b = op.args
    return _AddStep(
        "add",
        op.params,
        tuple(op.charges),
        any(op.sat),
        _word_operand(engine, a, slots),
        _word_operand(engine, b, slots),
    )


def _compile_sub(engine, op, slots):
    a, b = op.args
    if isinstance(b, ResidentVector):
        # Resident subtrahend: resolve positive words so the in-range
        # proof can skip the negate pass entirely (see _SubStep).
        return _SubStep(
            op.params,
            tuple(op.charges),
            any(op.sat),
            _word_operand(engine, a, slots),
            _word_operand(engine, b, slots),
        )
    return _AddStep(
        "sub",
        op.params,
        tuple(op.charges),
        any(op.sat),
        _word_operand(engine, a, slots),
        _word_operand(engine, b, slots, negate=True),
    )


def _compile_scale_add(engine, op, slots):
    x, _alpha, d = op.args
    return _ScaleAddStep(
        op.params,
        tuple(op.charges),
        any(op.sat),
        _word_operand(engine, x, slots),
        _float_operand(engine, d, slots),
    )


def _compile_sum(engine, op, slots):
    (x,) = op.args
    axis = op.params["axis"]
    if isinstance(x, ResidentVector):
        qshape = x.words.shape
    else:
        qshape = np.asarray(x, dtype=np.float64).shape
    if axis is None:
        qshape = (int(np.prod(qshape)),)
        eff_axis = 0
    else:
        eff_axis = axis
    if qshape[eff_axis] == 0:
        return _ZeroSumStep(engine, op, slots, qshape, eff_axis)
    return _SumStep(engine, op, slots)


def _compile_matvec(engine, op, slots):
    matrix, vector = op.args
    if isinstance(matrix, SparseResidentMatrix):
        return _SparseMatvecStep(engine, op, slots, "matvec", matrix, vector, matrix)
    return _MatvecStep(engine, op, slots)


def _compile_weighted_sum(engine, op, slots):
    weights, points = op.args
    if isinstance(points, SparseResidentMatrix):
        return _SparseMatvecStep(
            engine, op, slots, "weighted_sum", points, weights, points.transpose()
        )
    return _WeightedSumStep(engine, op, slots)


_COMPILERS = {
    "add": _compile_add,
    "sub": _compile_sub,
    "scale_add": _compile_scale_add,
    "sum": _compile_sum,
    "dot": _DotStep,
    "matvec": _compile_matvec,
    "weighted_sum": _compile_weighted_sum,
}


class IterationProgram:
    """The compiled op sequence of one iteration at one mode, plus the
    dataflow chains linked across it (see :func:`_link_chains`)."""

    __slots__ = ("steps", "chains", "tails")

    def __init__(self, steps, chains=None, tails=None):
        self.steps = tuple(steps)
        self.chains = chains if chains is not None else {}
        self.tails = tails if tails is not None else {}

    def __len__(self) -> int:
        return len(self.steps)


class ProgramRecorder:
    """Collects one interpreted iteration's op trace for compilation."""

    def __init__(self):
        self.ops: list[_RecordedOp] = []
        self._open: _RecordedOp | None = None

    def open_op(self, kind, args, params) -> None:
        self._open = _RecordedOp(kind, args, params)

    def close_op(self, out=None) -> None:
        op = self._open
        self._open = None
        if op is not None:
            op.out = out
            self.ops.append(op)

    def on_charge(self, mode_name, n_adds, energy_per_add) -> None:
        if self._open is not None:
            self._open.charges.append((mode_name, n_adds, energy_per_add))

    def on_saturation(self, needed: bool) -> None:
        if self._open is not None:
            self._open.sat.append(bool(needed))

    def finalize(self, engine, slots) -> IterationProgram:
        """Compile the recorded ops against the end-of-iteration slots."""
        steps = tuple(_COMPILERS[op.kind](engine, op, slots) for op in self.ops)
        chains, tails = _link_chains(self.ops, steps, engine.backend)
        return IterationProgram(steps, chains, tails)


class ProgramExecutor:
    """Replay cursor + the iteration's deferred charge list.

    Charges append in execution order — compiled steps extend with
    their precomputed tuples, interpreted passthroughs (un-hooked
    kernels such as ``mul``, and everything after a bailout) append via
    the ``_charge`` hook — and flush through one
    :meth:`~repro.arith.engine.EnergyLedger.charge_many` call at
    ``end_iteration``, preserving the interpreted accumulation order
    exactly.
    """

    __slots__ = ("program", "cursor", "pending", "bailed_reason", "results", "memo")

    def __init__(self, program: IterationProgram):
        self.program = program
        self.cursor = 0
        self.pending: list[tuple[str, int, float]] = []
        self.bailed_reason: str | None = None
        # Per-step outputs this iteration (chain sources) and the
        # speculated-tail memo: index -> (predicted args, output).
        self.results: list = [None] * len(program.steps)
        self.memo: dict[int, tuple[tuple, object]] = {}

    def next_step(self, kind, params):
        """The next compiled step, or ``None`` on structure mismatch."""
        if self.cursor >= len(self.program.steps):
            return None
        step = self.program.steps[self.cursor]
        if step.kind != kind or step.params != params:
            return None
        self.cursor += 1
        return step


class ProgramEngine(ApproxEngine):
    """An :class:`ApproxEngine` with iteration-program capture/replay.

    Driven by :class:`~repro.core.framework.ApproxIt` through
    :meth:`begin_iteration` / :meth:`bind_slot` / :meth:`end_iteration`;
    between those calls the public kernel API is unchanged, so solvers
    are oblivious.  Outside an iteration window (or with
    ``fast_path=False``) every call runs plain interpreted — a
    ``ProgramEngine`` never changes results, only how often the
    structure around them is re-derived.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pstate = _IDLE
        self._depth = 0
        self._slots: dict[str, object] = {}
        self._recorder: ProgramRecorder | None = None
        self._executor: ProgramExecutor | None = None
        self.program: IterationProgram | None = None
        self.program_captures = 0
        self.program_replays = 0
        self.program_bailouts = 0
        self._program_unsupported = False

    # ------------------------------------------------------------------
    # Lifecycle (called by the framework's online loop)
    # ------------------------------------------------------------------
    def begin_iteration(self, slots: dict[str, object]) -> str:
        """Open an iteration window.

        Returns ``"replay"`` when a cached program will drive it,
        ``"record"`` when this iteration runs interpreted under the
        recorder, ``"off"`` when capture is unavailable (legacy engine
        or a previous compile failure).
        """
        if not self.fast_path or self._program_unsupported:
            self._pstate = _IDLE
            return "off"
        self._slots = dict(slots)
        if self.program is not None:
            self._executor = ProgramExecutor(self.program)
            self._pstate = _REPLAY
            return "replay"
        self._recorder = ProgramRecorder()
        self._pstate = _RECORD
        return "record"

    def bind_slot(self, name: str, value) -> None:
        """Declare an iteration-varying operand discovered mid-iteration
        (the framework binds the direction ``d`` once computed)."""
        if self._pstate is not _IDLE:
            self._slots[name] = value

    def invalidate_program(self) -> None:
        """Drop the cached program (mode reconfiguration, rollback)."""
        self.program = None

    def end_iteration(self) -> tuple[str, str | None]:
        """Close the iteration window.

        Returns ``(execution, bailout_reason)``: execution is
        ``"captured"`` / ``"replayed"`` / ``"interpreted"``; the reason
        is non-``None`` exactly when a replay bailed (the program was
        dropped and the next iteration re-records).  Flushes a replay's
        deferred charges through one ordered ``charge_many`` call.
        """
        state = self._pstate
        execution = "interpreted"
        reason = None
        if state is _RECORD:
            recorder = self._recorder
            self._recorder = None
            if recorder is not None:
                try:
                    self.program = recorder.finalize(self, self._slots)
                except Exception:
                    # Structure the compiler cannot express: stay on the
                    # interpreted path for good rather than re-fail
                    # every iteration.
                    self.program = None
                    self._program_unsupported = True
                else:
                    self.program_captures += 1
                    execution = "captured"
        elif state is _REPLAY or state is _BAILED:
            executor = self._executor
            self._executor = None
            if (
                state is _REPLAY
                and self.program is not None
                and executor.cursor != len(self.program.steps)
            ):
                # The iteration issued fewer ops than the program holds:
                # every replayed step was individually validated, so the
                # results stand, but the structure diverged.
                executor.bailed_reason = "shorter-iteration"
            if executor.bailed_reason is None:
                execution = "replayed"
                self.program_replays += 1
            else:
                reason = executor.bailed_reason
                self.program_bailouts += 1
                self.program = None
            if executor.pending:
                self.ledger.charge_many(executor.pending)
        self._pstate = _IDLE
        self._slots = {}
        return execution, reason

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _charge(self, mode_name, n_adds, energy_per_add):
        state = self._pstate
        if state is _RECORD:
            recorder = self._recorder
            if recorder is not None:
                recorder.on_charge(mode_name, n_adds, energy_per_add)
            self.ledger.charge(mode_name, n_adds, energy_per_add)
        elif state is _REPLAY or state is _BAILED:
            self._executor.pending.append((mode_name, n_adds, energy_per_add))
        else:
            self.ledger.charge(mode_name, n_adds, energy_per_add)

    def _saturation_needed(self, qa, qb, bounds_a, bounds_b):
        needed = super()._saturation_needed(qa, qb, bounds_a, bounds_b)
        if self._pstate is _RECORD:
            recorder = self._recorder
            if recorder is not None:
                recorder.on_saturation(needed)
        return needed

    def _dispatch(self, kind, args, params):
        if self._pstate is _RECORD:
            recorder = self._recorder
            recorder.open_op(kind, args, params)
            self._depth += 1
            try:
                out = _BASE_IMPLS[kind](self, *args, **params)
            except BaseException:
                # Recording aborted (e.g. a non-finite operand raised):
                # drop the half-built trace; the error propagates as it
                # would from a plain engine.
                self._recorder = None
                self._pstate = _IDLE
                raise
            finally:
                self._depth -= 1
            recorder.close_op(out)
            return out
        # _REPLAY
        executor = self._executor
        step = executor.next_step(kind, params)
        if step is None:
            return self._bail_and_run(kind, args, params, "structure")
        idx = executor.cursor - 1
        hit = executor.memo.pop(idx, None)
        if hit is not None:
            pred_args, out = hit
            if len(pred_args) == len(args) and all(
                p is a for p, a in zip(pred_args, args)
            ):
                # Chain hit: this op already ran speculatively at its
                # chain head on these exact operands — serve the result
                # and charge now, keeping the ledger order identical.
                executor.results[idx] = out
                executor.pending.extend(step.charges)
                return out
        self._depth += 1
        try:
            out = step.replay(self, args)
        except ProgramBailout as bail:
            self._depth -= 1
            return self._bail_and_run(kind, args, params, bail.reason)
        except BaseException:
            self._depth -= 1
            raise
        self._depth -= 1
        executor.pending.extend(step.charges)
        executor.results[idx] = out
        chain = self.program.chains.get(idx)
        if chain is not None:
            _speculate_chain(self, executor, self.program, chain)
        return out

    def _bail_and_run(self, kind, args, params, reason):
        executor = self._executor
        if executor.bailed_reason is None:
            executor.bailed_reason = reason
        # The rest of the iteration runs interpreted; its charges keep
        # appending to the pending list (via _charge) in order.
        self._pstate = _BAILED
        return _BASE_IMPLS[kind](self, *args, **params)

    # ------------------------------------------------------------------
    # Hooked public kernels (record/replay at depth 0 only — nested
    # internal calls like sub→add or matvec→sum pass through)
    # ------------------------------------------------------------------
    def add(self, a, b, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("add", (a, b), {"resident": resident})
        return ApproxEngine.add(self, a, b, resident=resident)

    def sub(self, a, b, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("sub", (a, b), {"resident": resident})
        return ApproxEngine.sub(self, a, b, resident=resident)

    def scale_add(self, x, alpha: float, d, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "scale_add", (x, alpha, d), {"resident": resident}
            )
        return ApproxEngine.scale_add(self, x, alpha, d, resident=resident)

    def sum(
        self,
        x,
        axis: int | None = None,
        *,
        resident: bool = False,
        assume_finite: bool = False,
    ):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "sum",
                (x,),
                {"axis": axis, "resident": resident, "assume_finite": assume_finite},
            )
        return ApproxEngine.sum(
            self, x, axis, resident=resident, assume_finite=assume_finite
        )

    def dot(self, a, b) -> float:
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("dot", (a, b), {})
        return ApproxEngine.dot(self, a, b)

    def matvec(self, matrix, vector, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "matvec", (matrix, vector), {"resident": resident}
            )
        return ApproxEngine.matvec(self, matrix, vector, resident=resident)

    def weighted_sum(self, weights, points, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "weighted_sum", (weights, points), {"resident": resident}
            )
        return ApproxEngine.weighted_sum(self, weights, points, resident=resident)

    def cache_stats(self) -> dict[str, int]:
        stats = super().cache_stats()
        stats["program_captures"] = self.program_captures
        stats["program_replays"] = self.program_replays
        stats["program_bailouts"] = self.program_bailouts
        stats["program_cached"] = int(self.program is not None)
        return stats


#: Interpreted implementations the dispatcher records through and bails
#: out to — always the plain ApproxEngine methods, never the hooks.
_BASE_IMPLS = {
    "add": ApproxEngine.add,
    "sub": ApproxEngine.sub,
    "scale_add": ApproxEngine.scale_add,
    "sum": ApproxEngine.sum,
    "dot": ApproxEngine.dot,
    "matvec": ApproxEngine.matvec,
    "weighted_sum": ApproxEngine.weighted_sum,
}


# ======================================================================
# Batched (lane-group) capture & replay
# ======================================================================
#
# A lock-step lane group walks the *same* op structure every iteration:
# the only thing that changes between iterations — or between lane-group
# compositions, as lanes converge out of the active set — is the leading
# lane dimension of the stacked operands.  The batched resolvers below
# therefore validate lane-stacked operands on their *trailing* (per-
# lane) dims only, which is what lets one captured program replay across
# a shrinking lane group without re-capture: the program is a property
# of the (solver, mode) pair, not of the lane count.
#
# Replay arithmetic is shared with the solo path: ``_replay_add_words``
# and ``_replay_reduce`` are shape-agnostic (the adders are elementwise
# and the tree geometry depends only on the reduced-axis length).  The
# per-lane bound arrays a ``LaneStack`` carries collapse to their global
# (min-over-lanes, max-over-lanes) envelope first — the interpreted
# batched precheck is already global any-lane, and a conservative
# precheck can only trigger the true-sum recompute more often, never
# change the emitted words.
#
# Charges are recorded as lane-count-independent
# ``(mode, adds_per_lane, energy_per_add)`` tuples and flushed at
# ``end_iteration`` through one ordered
# :meth:`~repro.arith.engine.BatchedEnergyLedger.charge_many_lanes`
# call over the lanes the iteration ran on — per-lane accumulation
# order matches the interpreted batched run (and hence the solo oracle)
# addition for addition.


def _b_word_operand(engine, operand, slots, lanes, negate=False):
    """Compile a lane-aware resolver: operand -> ``(words, bounds)``.

    The batched analogue of :func:`_word_operand` with two differences:
    a :class:`LaneStack` takes the role of :class:`ResidentVector` for
    lane-stacked residents, and any operand whose leading dim equalled
    the capture-time lane count is validated on trailing dims only (so
    the program survives active-set shrinkage).  Bounds collapse to the
    scalar global envelope (sound: see module notes above).
    """
    fmt = engine.fmt
    signed_lo = engine._signed_lo
    if isinstance(operand, LaneStack):
        trail = operand.words.shape[1:]
        ndim = operand.words.ndim

        def resolve(op):
            if (
                not isinstance(op, LaneStack)
                or op.fmt != fmt
                or op.words.ndim != ndim
                or op.words.shape[1:] != trail
            ):
                raise ProgramBailout("operand")
            bounds = op.lane_bounds()
            if negate:
                words = fmt.handle_overflow(-op.words)
                if bounds is not None and bool(np.all(bounds[0] > signed_lo)):
                    return words, (-int(bounds[1].max()), -int(bounds[0].min()))
                return words, None
            if bounds is None:
                return op.words, None
            return op.words, (int(bounds[0].min()), int(bounds[1].max()))

        return resolve
    if isinstance(operand, ResidentVector):
        # Lane-shared resident: identical semantics to the solo path.
        return _word_operand(engine, operand, slots, negate=negate)

    arr = np.asarray(operand, dtype=np.float64)
    lane_stacked = arr.ndim >= 1 and arr.shape[0] == lanes
    shape = arr.shape
    trail = arr.shape[1:]
    ndim = arr.ndim

    def check_shape(a):
        if lane_stacked:
            if a.ndim != ndim or a.shape[1:] != trail:
                raise ProgramBailout("shape")
        elif a.shape != shape:
            raise ProgramBailout("shape")

    if _is_slot(operand, arr, slots):

        def resolve(op):
            if isinstance(op, (LaneStack, ResidentVector)):
                raise ProgramBailout("operand")
            a = np.asarray(op, dtype=np.float64)
            check_shape(a)
            return fmt.encode(-a if negate else a), None

        return resolve

    obj = operand if isinstance(operand, np.ndarray) else arr
    words = fmt.encode(-arr if negate else arr)
    bounds = (int(words.min()), int(words.max())) if words.size else None

    def resolve(op):
        if op is obj:
            return words, bounds
        if isinstance(op, (LaneStack, ResidentVector)):
            raise ProgramBailout("operand")
        a = np.asarray(op, dtype=np.float64)
        check_shape(a)
        return fmt.encode(-a if negate else a), None

    return resolve


def _b_float_operand(engine, operand, slots, lanes):
    """Compile a lane-aware resolver: operand -> float array."""
    fmt = engine.fmt
    if isinstance(operand, LaneStack):
        trail = operand.words.shape[1:]
        ndim = operand.words.ndim

        def resolve(op):
            if (
                not isinstance(op, LaneStack)
                or op.fmt != fmt
                or op.words.ndim != ndim
                or op.words.shape[1:] != trail
            ):
                raise ProgramBailout("operand")
            return op.decode()

        return resolve
    if isinstance(operand, ResidentVector):
        return _float_operand(engine, operand, slots)

    arr = np.asarray(operand, dtype=np.float64)
    lane_stacked = arr.ndim >= 1 and arr.shape[0] == lanes
    shape = arr.shape
    trail = arr.shape[1:]
    ndim = arr.ndim

    def check_shape(a):
        if lane_stacked:
            if a.ndim != ndim or a.shape[1:] != trail:
                raise ProgramBailout("shape")
        elif a.shape != shape:
            raise ProgramBailout("shape")

    if _is_slot(operand, arr, slots):

        def resolve(op):
            if isinstance(op, (LaneStack, ResidentVector)):
                raise ProgramBailout("operand")
            a = np.asarray(op, dtype=np.float64)
            check_shape(a)
            return a

        return resolve

    obj = operand if isinstance(operand, np.ndarray) else arr

    def resolve(op):
        if op is obj:
            return arr
        if isinstance(op, (LaneStack, ResidentVector)):
            raise ProgramBailout("operand")
        a = np.asarray(op, dtype=np.float64)
        check_shape(a)
        return a

    return resolve


class _BScaleAddStep:
    """Batched ``scale_add``: per-lane alpha broadcast, alpha live."""

    __slots__ = ("kind", "params", "charges", "sat", "res_x", "res_d", "resident")

    def __init__(self, params, charges, sat, res_x, res_d):
        self.kind = "scale_add"
        self.params = params
        self.charges = charges
        self.sat = sat
        self.res_x = res_x
        self.res_d = res_d
        self.resident = params["resident"]

    def replay(self, engine, args):
        x, alpha, d = args
        qa, bounds_a = self.res_x(x)
        df = self.res_d(d)
        alpha = np.asarray(alpha, dtype=np.float64)
        if alpha.ndim == 1:
            alpha = alpha.reshape((-1,) + (1,) * (df.ndim - 1))
        qb = engine.fmt.encode(alpha * df)
        out = _replay_add_words(engine, qa, qb, bounds_a, None, self.sat)
        return engine._emit(out, self.resident)


class _BSumStep:
    """Batched ``sum``: the lane axis is implicit and always survives.

    The reduce slab's leading dim is the per-lane reduced-axis length —
    fixed by the program — while the surviving lane dim floats with the
    active group, so the reduction plan is fetched per replay (a dict
    hit after the first call at each group size).
    """

    __slots__ = (
        "kind",
        "params",
        "charges",
        "sat",
        "is_stack",
        "trail",
        "scalar",
        "axis",
        "assume_finite",
        "resident",
    )

    def __init__(self, op, lanes):
        (x,) = op.args
        self.kind = "sum"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.assume_finite = op.params["assume_finite"]
        self.resident = op.params["resident"]
        axis = op.params["axis"]
        self.scalar = axis is None
        if isinstance(x, LaneStack):
            self.is_stack = True
            self.trail = x.words.shape[1:]
        else:
            self.is_stack = False
            self.trail = np.asarray(x, dtype=np.float64).shape[1:]
        if not self.scalar:
            if axis < 0:
                axis += len(self.trail)
        self.axis = axis

    def replay(self, engine, args):
        (x,) = args
        if self.is_stack:
            if (
                not isinstance(x, LaneStack)
                or x.fmt != engine.fmt
                or x.words.shape[1:] != self.trail
            ):
                raise ProgramBailout("operand")
            q = x.words
        else:
            if isinstance(x, (LaneStack, ResidentVector)):
                raise ProgramBailout("operand")
            arr = np.asarray(x, dtype=np.float64)
            if arr.shape[1:] != self.trail:
                raise ProgramBailout("shape")
            q = engine.fmt.encode(arr, assume_finite=self.assume_finite)
        if self.scalar:
            q = q.reshape(q.shape[0], -1)
            red_axis = 1
        else:
            red_axis = self.axis + 1
        if q.shape[red_axis] == 0:
            out = np.zeros(tuple(np.delete(q.shape, red_axis)))
            if self.scalar:
                return out.reshape(q.shape[0])
            return engine._emit(engine.fmt.encode(out), self.resident)
        slab = np.moveaxis(q, red_axis, 0)
        plan = _get_plan(engine, slab.shape)
        reduced = _replay_reduce(engine, slab, plan, self.sat)
        if self.scalar:
            return engine.fmt.decode(reduced)
        return engine._emit(reduced, self.resident)


class _BMatvecStep:
    """Batched ``matvec``: shared matrix × ``(L, N)`` iterate stack."""

    __slots__ = ("kind", "params", "charges", "sat", "res_mat", "res_vec", "rows", "cols", "resident", "bufs")

    def __init__(self, engine, op, slots, lanes):
        matrix, vector = op.args
        self.kind = "matvec"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.res_mat = _matrix_operand(engine, matrix, slots)
        self.res_vec = _b_float_operand(engine, vector, slots, lanes)
        mat = np.asarray(matrix, dtype=np.float64)
        self.rows, self.cols = mat.shape
        self.bufs: dict = {}

    def replay(self, engine, args):
        matrix, vector = args
        mat, abs_max, strict = self.res_mat(matrix)
        xs = self.res_vec(vector)
        if self.cols == 0:
            zeros = engine.fmt.encode(np.zeros((xs.shape[0], self.rows)))
            return engine._emit(zeros, self.resident)
        if _fused_product_ok(engine, self, abs_max, xs, self.cols):
            reduced = engine.backend.product_reduce_words(
                mat[np.newaxis, :, :],
                xs[:, np.newaxis, :],
                engine.fmt.scale,
                2,
                self.bufs,
            )
            return engine._emit(reduced, self.resident)
        products = mat[np.newaxis, :, :] * xs[:, np.newaxis, :]
        q = _trusted_encode(engine, products, xs, abs_max, strict)
        slab = np.moveaxis(q, 2, 0)
        plan = _get_plan(engine, slab.shape)
        reduced = _replay_reduce(engine, slab, plan, self.sat)
        return engine._emit(reduced, self.resident)


class _BWeightedSumStep:
    """Batched ``weighted_sum``: per-lane weights × shared points."""

    __slots__ = ("kind", "params", "charges", "sat", "res_w", "res_pts", "n", "resident", "bufs")

    def __init__(self, engine, op, slots, lanes):
        weights, points = op.args
        self.kind = "weighted_sum"
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.res_w = _b_float_operand(engine, weights, slots, lanes)
        self.res_pts = _matrix_operand(engine, points, slots)
        pts = np.asarray(points, dtype=np.float64)
        self.n = pts.shape[0]
        self.bufs: dict = {}

    def replay(self, engine, args):
        weights, points = args
        w = self.res_w(weights)
        pts, abs_max, strict = self.res_pts(points)
        if self.n == 0:
            zeros = engine.fmt.encode(
                np.zeros((w.shape[0],) + pts.shape[1:])
            )
            return engine._emit(zeros, self.resident)
        if _fused_product_ok(engine, self, abs_max, w, self.n):
            reduced = engine.backend.product_reduce_words(
                w[:, :, np.newaxis],
                pts[np.newaxis, :, :],
                engine.fmt.scale,
                1,
                self.bufs,
            )
            return engine._emit(reduced, self.resident)
        products = w[:, :, np.newaxis] * pts[np.newaxis, :, :]
        q = _trusted_encode(engine, products, w, abs_max, strict)
        slab = np.moveaxis(q, 1, 0)
        plan = _get_plan(engine, slab.shape)
        reduced = _replay_reduce(engine, slab, plan, self.sat)
        return engine._emit(reduced, self.resident)


class _BSparseMatvecStep:
    """Batched sparse ``matvec`` / ``weighted_sum``: shared CSR operand
    × ``(L, N)`` stack, per-row segment accumulation per lane.

    Identity-only operand resolution, as in the solo
    :class:`_SparseMatvecStep`.  The lane-count-dependent slab plans
    are fetched per replay (the active lane group shrinks as lanes
    finish), sharing the engine's dense plan cache; the fused route
    runs the backend CSR kernel over the whole stack at once.
    """

    __slots__ = (
        "kind",
        "params",
        "charges",
        "sat",
        "obj",
        "sp",
        "res_vec",
        "buckets",
        "resident",
        "bufs",
    )

    def __init__(self, engine, op, slots, lanes, kind, operand, vec_arg, sp):
        self.kind = kind
        self.params = op.params
        self.charges = tuple(op.charges)
        self.sat = any(op.sat)
        self.resident = op.params["resident"]
        self.obj = operand
        self.sp = sp
        self.res_vec = _b_float_operand(engine, vec_arg, slots, lanes)
        self.buckets = tuple(sp.row_plan().buckets)
        self.bufs: dict = {}

    def replay(self, engine, args):
        if self.kind == "matvec":
            operand, vec_arg = args
        else:
            vec_arg, operand = args
        if operand is not self.obj:
            raise ProgramBailout("operand")
        sp = self.sp
        xs = self.res_vec(vec_arg)
        if sp.nnz_max and _fused_product_ok(
            engine, self, sp.abs_max, xs, sp.nnz_max
        ):
            out = engine.backend.csr_matvec_words(
                sp.data, sp.indices, sp.indptr, xs, engine.fmt.scale, self.bufs
            )
            return engine._emit(out, self.resident)
        products = sp.data[np.newaxis, :] * xs[:, sp.indices]
        q = _trusted_encode(engine, products, xs, sp.abs_max, True)
        out = np.zeros((xs.shape[0], sp.shape[0]), dtype=np.int64)
        for _length, rows, gather in self.buckets:
            slab = np.moveaxis(q[:, gather], 2, 0)
            plan = _get_plan(engine, slab.shape)
            out[:, rows] = _replay_reduce(engine, slab, plan, self.sat)
        return engine._emit(out, self.resident)


def _b_compile_add(engine, op, slots, lanes):
    a, b = op.args
    return _AddStep(
        "add",
        op.params,
        tuple(op.charges),
        any(op.sat),
        _b_word_operand(engine, a, slots, lanes),
        _b_word_operand(engine, b, slots, lanes),
    )


def _b_compile_sub(engine, op, slots, lanes):
    a, b = op.args
    return _AddStep(
        "sub",
        op.params,
        tuple(op.charges),
        any(op.sat),
        _b_word_operand(engine, a, slots, lanes),
        _b_word_operand(engine, b, slots, lanes, negate=True),
    )


def _b_compile_scale_add(engine, op, slots, lanes):
    x, _alpha, d = op.args
    return _BScaleAddStep(
        op.params,
        tuple(op.charges),
        any(op.sat),
        _b_word_operand(engine, x, slots, lanes),
        _b_float_operand(engine, d, slots, lanes),
    )


def _b_compile_sum(engine, op, slots, lanes):
    return _BSumStep(op, lanes)


def _b_compile_matvec(engine, op, slots, lanes):
    matrix, vector = op.args
    if isinstance(matrix, SparseResidentMatrix):
        return _BSparseMatvecStep(
            engine, op, slots, lanes, "matvec", matrix, vector, matrix
        )
    return _BMatvecStep(engine, op, slots, lanes)


def _b_compile_weighted_sum(engine, op, slots, lanes):
    weights, points = op.args
    if isinstance(points, SparseResidentMatrix):
        return _BSparseMatvecStep(
            engine, op, slots, lanes, "weighted_sum", points, weights,
            points.transpose(),
        )
    return _BWeightedSumStep(engine, op, slots, lanes)


_B_COMPILERS = {
    "add": _b_compile_add,
    "sub": _b_compile_sub,
    "scale_add": _b_compile_scale_add,
    "sum": _b_compile_sum,
    "matvec": _b_compile_matvec,
    "weighted_sum": _b_compile_weighted_sum,
}


def _finalize_batched(recorder, engine, slots, lanes) -> IterationProgram:
    """Compile a batched recording against the end-of-iteration slots."""
    steps = tuple(
        _B_COMPILERS[op.kind](engine, op, slots, lanes) for op in recorder.ops
    )
    chains, tails = _link_chains(recorder.ops, steps, engine.backend)
    return IterationProgram(steps, chains, tails)


class BatchedProgramEngine(BatchedEngine):
    """A :class:`~repro.arith.engine.BatchedEngine` with lane-group
    iteration-program capture/replay.

    One program per (solver, mode) pair, captured from the first
    lock-step iteration this engine's mode group runs and replayed over
    the ``(L, ...)``-stacked buffers of every later one.  Lane-stacked
    operands validate trailing dims only, so per-lane convergence
    masking — the active group shrinking as lanes finish or switch
    modes — replays the same program at any group size.  Replayed
    charges defer to the executor's pending list and flush through one
    ordered ``charge_many_lanes`` call per iteration.

    Only *uniform* batched kernel adapters may drive this engine: every
    lane must issue the identical op sequence over the full selected
    lane set with no mid-iteration ``select_lanes`` (adapters declare
    this via ``BatchedKernels.replayable``).  The interpreted batched
    path stays untouched as the oracle: capture off *is* the plain
    batched engine.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pstate = _IDLE
        self._depth = 0
        self._slots: dict[str, object] = {}
        self._recorder: ProgramRecorder | None = None
        self._executor: ProgramExecutor | None = None
        self._iter_lane_ids: np.ndarray | None = None
        self._capture_lanes = 0
        self.program: IterationProgram | None = None
        self.program_captures = 0
        self.program_replays = 0
        self.program_bailouts = 0
        self._program_unsupported = False

    # ------------------------------------------------------------------
    # Lifecycle (called by the framework's batched loop, per mode group)
    # ------------------------------------------------------------------
    def begin_iteration(self, slots: dict[str, object]) -> str:
        """Open a lane-group iteration window (after ``select_lanes``).

        Returns ``"replay"`` / ``"record"`` / ``"off"`` exactly as
        :meth:`ProgramEngine.begin_iteration` does.
        """
        if not self.fast_path or self._program_unsupported:
            self._pstate = _IDLE
            return "off"
        if self.lane_ids is None:
            raise RuntimeError("call select_lanes() before begin_iteration()")
        self._slots = dict(slots)
        self._iter_lane_ids = self.lane_ids
        if self.program is not None:
            self._executor = ProgramExecutor(self.program)
            self._pstate = _REPLAY
            return "replay"
        self._recorder = ProgramRecorder()
        self._capture_lanes = int(self.lane_ids.shape[0])
        self._pstate = _RECORD
        return "record"

    def bind_slot(self, name: str, value) -> None:
        """Declare an iteration-varying operand discovered mid-iteration
        (the framework binds the stacked direction ``D``)."""
        if self._pstate is not _IDLE:
            self._slots[name] = value

    def invalidate_program(self) -> None:
        """Drop the cached program (rollback re-record)."""
        self.program = None

    def end_iteration(self) -> tuple[str, str | None]:
        """Close the lane-group iteration window.

        Returns ``(execution, bailout_reason)`` as the solo engine does,
        flushing a replay's deferred charges through one ordered
        ``charge_many_lanes`` call over the lanes the window opened on.
        """
        state = self._pstate
        execution = "interpreted"
        reason = None
        if state is _RECORD:
            recorder = self._recorder
            self._recorder = None
            if recorder is not None:
                try:
                    self.program = _finalize_batched(
                        recorder, self, self._slots, self._capture_lanes
                    )
                except Exception:
                    # Structure the batched compiler cannot express:
                    # stay interpreted for good rather than re-fail
                    # every iteration.
                    self.program = None
                    self._program_unsupported = True
                else:
                    self.program_captures += 1
                    execution = "captured"
        elif state is _REPLAY or state is _BAILED:
            executor = self._executor
            self._executor = None
            if (
                state is _REPLAY
                and self.program is not None
                and executor.cursor != len(self.program.steps)
            ):
                executor.bailed_reason = "shorter-iteration"
            if executor.bailed_reason is None:
                execution = "replayed"
                self.program_replays += 1
            else:
                reason = executor.bailed_reason
                self.program_bailouts += 1
                self.program = None
            if executor.pending:
                self.ledger.charge_many_lanes(
                    self._iter_lane_ids, executor.pending
                )
        self._pstate = _IDLE
        self._slots = {}
        self._iter_lane_ids = None
        return execution, reason

    # ------------------------------------------------------------------
    # Hook plumbing
    # ------------------------------------------------------------------
    def _charge_lanes(self, mode_name, adds_per_lane, energy_per_add):
        state = self._pstate
        if state is _RECORD:
            recorder = self._recorder
            if recorder is not None:
                recorder.on_charge(mode_name, adds_per_lane, energy_per_add)
            BatchedEngine._charge_lanes(
                self, mode_name, adds_per_lane, energy_per_add
            )
        elif state is _REPLAY or state is _BAILED:
            self._executor.pending.append(
                (mode_name, adds_per_lane, energy_per_add)
            )
        else:
            BatchedEngine._charge_lanes(
                self, mode_name, adds_per_lane, energy_per_add
            )

    def _saturation_needed(self, qa, qb, bounds_a, bounds_b, lane_axis):
        needed = super()._saturation_needed(
            qa, qb, bounds_a, bounds_b, lane_axis
        )
        if self._pstate is _RECORD:
            recorder = self._recorder
            if recorder is not None:
                recorder.on_saturation(needed)
        return needed

    def _dispatch(self, kind, args, params):
        if self._pstate is _RECORD:
            recorder = self._recorder
            recorder.open_op(kind, args, params)
            self._depth += 1
            try:
                out = _B_BASE_IMPLS[kind](self, *args, **params)
            except BaseException:
                self._recorder = None
                self._pstate = _IDLE
                raise
            finally:
                self._depth -= 1
            recorder.close_op(out)
            return out
        # _REPLAY
        executor = self._executor
        step = executor.next_step(kind, params)
        if step is None:
            return self._bail_and_run(kind, args, params, "structure")
        idx = executor.cursor - 1
        hit = executor.memo.pop(idx, None)
        if hit is not None:
            pred_args, out = hit
            if len(pred_args) == len(args) and all(
                p is a for p, a in zip(pred_args, args)
            ):
                executor.results[idx] = out
                executor.pending.extend(step.charges)
                return out
        self._depth += 1
        try:
            out = step.replay(self, args)
        except ProgramBailout as bail:
            self._depth -= 1
            return self._bail_and_run(kind, args, params, bail.reason)
        except BaseException:
            self._depth -= 1
            raise
        self._depth -= 1
        executor.pending.extend(step.charges)
        executor.results[idx] = out
        chain = self.program.chains.get(idx)
        if chain is not None:
            _speculate_chain(self, executor, self.program, chain)
        return out

    def _bail_and_run(self, kind, args, params, reason):
        executor = self._executor
        if executor.bailed_reason is None:
            executor.bailed_reason = reason
        self._pstate = _BAILED
        return _B_BASE_IMPLS[kind](self, *args, **params)

    # ------------------------------------------------------------------
    # Hooked public kernels (record/replay at depth 0 only)
    # ------------------------------------------------------------------
    def add(self, a, b, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("add", (a, b), {"resident": resident})
        return BatchedEngine.add(self, a, b, resident=resident)

    def sub(self, a, b, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("sub", (a, b), {"resident": resident})
        return BatchedEngine.sub(self, a, b, resident=resident)

    def scale_add(self, x, alpha, d, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "scale_add", (x, alpha, d), {"resident": resident}
            )
        return BatchedEngine.scale_add(self, x, alpha, d, resident=resident)

    def sum(
        self,
        x,
        axis: int | None = None,
        *,
        resident: bool = False,
        assume_finite: bool = False,
    ):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "sum",
                (x,),
                {"axis": axis, "resident": resident, "assume_finite": assume_finite},
            )
        return BatchedEngine.sum(
            self, x, axis, resident=resident, assume_finite=assume_finite
        )

    def matvec(self, matrix, x, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch("matvec", (matrix, x), {"resident": resident})
        return BatchedEngine.matvec(self, matrix, x, resident=resident)

    def weighted_sum(self, weights, points, *, resident: bool = False):
        if self._depth == 0 and (
            self._pstate is _RECORD or self._pstate is _REPLAY
        ):
            return self._dispatch(
                "weighted_sum", (weights, points), {"resident": resident}
            )
        return BatchedEngine.weighted_sum(
            self, weights, points, resident=resident
        )

    def cache_stats(self) -> dict[str, int]:
        stats = super().cache_stats()
        stats["program_captures"] = self.program_captures
        stats["program_replays"] = self.program_replays
        stats["program_bailouts"] = self.program_bailouts
        stats["program_cached"] = int(self.program is not None)
        return stats


#: Interpreted batched implementations the dispatcher records through
#: and bails out to — the plain BatchedEngine methods, never the hooks.
#: ``dot`` is deliberately absent: the batched ``dot`` is un-hooked and
#: funnels into the hooked ``sum`` at depth 0.
_B_BASE_IMPLS = {
    "add": BatchedEngine.add,
    "sub": BatchedEngine.sub,
    "scale_add": BatchedEngine.scale_add,
    "sum": BatchedEngine.sum,
    "matvec": BatchedEngine.matvec,
    "weighted_sum": BatchedEngine.weighted_sum,
}
