"""Q-format fixed-point encoding.

A :class:`FixedPointFormat` maps floats to ``width``-bit two's-complement
integers with ``frac_bits`` fractional bits (resolution ``2**-frac_bits``)
— the representation an approximate-adder datapath actually operates on.

Overflow policy is configurable:

* ``"saturate"`` (default) — clamp to the representable range, the usual
  DSP datapath choice and the one that keeps iterative methods stable;
* ``"wrap"`` — discard high bits, matching raw adder overflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware import bitops

_OVERFLOW_POLICIES = ("saturate", "wrap")


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed Q-format: ``width`` total bits, ``frac_bits`` fractional.

    Attributes:
        width: total word width including the sign bit.
        frac_bits: fractional bits; integer range shrinks as it grows.
        overflow: ``"saturate"`` or ``"wrap"``.
    """

    width: int = 32
    frac_bits: int = 16
    overflow: str = "saturate"

    def __post_init__(self):
        bitops.check_width(self.width)
        if not 0 <= self.frac_bits < self.width:
            raise ValueError(
                f"frac_bits must be in [0, width), got {self.frac_bits} "
                f"for width {self.width}"
            )
        if self.overflow not in _OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {_OVERFLOW_POLICIES}, got {self.overflow!r}"
            )

    # ------------------------------------------------------------------
    # Range / resolution
    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Multiplier applied to floats before rounding (``2**frac_bits``)."""
        return float(1 << self.frac_bits)

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""
        return 1.0 / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return bitops.signed_range(self.width)[1] / self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return bitops.signed_range(self.width)[0] / self.scale

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray, *, assume_finite: bool = False) -> np.ndarray:
        """Quantize floats to fixed-point words (``int64``).

        Args:
            values: float data to quantize.
            assume_finite: skip the finiteness scan.  Only pass ``True``
                when finiteness has already been *proved* (e.g. the
                values are products of operands whose absolute maxima
                were checked) — the emitted words are identical either
                way, this merely avoids a redundant full pass.

        Raises:
            ValueError: if any value is NaN or infinite — iterative
                methods should never feed non-finite data into the
                datapath, so this is treated as a caller bug rather than
                silently clipped.
        """
        arr = np.asarray(values, dtype=np.float64)
        if not assume_finite and not np.all(np.isfinite(arr)):
            raise ValueError("cannot encode non-finite values into fixed point")
        # The scaled product is a fresh temporary, so round it in place
        # and clamp the words in place: same values, two fewer full-size
        # allocations on the hottest datapath call.
        scaled = arr * self.scale
        if isinstance(scaled, np.ndarray):
            np.rint(scaled, out=scaled)
            q = scaled.astype(np.int64)
        else:  # 0-d input: the product collapses to a numpy scalar
            q = np.asarray(np.rint(scaled), dtype=np.int64)
        if self.overflow == "saturate":
            lo, hi = bitops.signed_range(self.width)
            return np.clip(q, lo, hi, out=q)
        return bitops.to_signed(bitops.to_unsigned(q, self.width), self.width)

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Convert fixed-point words back to floats."""
        return np.asarray(words, dtype=np.float64) / self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip floats through the format (encode then decode)."""
        return self.decode(self.encode(values))

    def handle_overflow(self, words: np.ndarray) -> np.ndarray:
        """Apply the overflow policy to raw (possibly out-of-range) words."""
        if self.overflow == "saturate":
            return bitops.saturate_signed(words, self.width)
        return bitops.to_signed(bitops.to_unsigned(words, self.width), self.width)

    def representable(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values inside the representable range."""
        arr = np.asarray(values, dtype=np.float64)
        return (arr >= self.min_value) & (arr <= self.max_value)

    def describe(self) -> str:
        """Human-readable ``Qm.n`` style description."""
        int_bits = self.width - self.frac_bits - 1
        return (
            f"Q{int_bits}.{self.frac_bits} (width={self.width}, "
            f"range [{self.min_value:g}, {self.max_value:g}], "
            f"resolution {self.resolution:g}, overflow={self.overflow})"
        )
