"""First-order error propagation from adder statistics to reductions.

Section 3.1 argues that low-level metrics "cannot be directly used to
characterize the quality degradation at the application-level because of
the error masking and/or error accumulation effects".  This module
quantifies the accumulation half of that argument: given an adder's
characterized per-operation error statistics, it predicts the error of
an ``n``-summand tree reduction analytically, and provides the paired
measurement routine so the prediction can be validated (and its
breakdown demonstrated — the residual gap *is* the masking effect the
paper refers to).

Model: a balanced tree performs ``n - 1`` additions; treating per-add
errors as i.i.d. with mean ``ME`` and second moment ``E[D²] ≈ MED²+Var``
(both measured in LSBs by
:func:`~repro.hardware.characterization.characterize_adder`), the total
error in real units is

* mean:  ``(n - 1) * ME * resolution``
* std:   ``sqrt(n - 1) * MED * resolution``  (MED upper-bounds the
  per-add std for the bounded error distributions of lower-part adders)

This is deliberately first-order: operand-distribution effects (the
masking) make it an envelope rather than an exact law, which the tests
pin by checking containment rather than equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arith.engine import ApproxEngine, EnergyLedger
from repro.arith.fixed import FixedPointFormat
from repro.arith.modes import ApproxMode
from repro.hardware.characterization import AdderErrorProfile


@dataclass(frozen=True)
class PropagationEstimate:
    """Predicted error of a tree reduction.

    Attributes:
        n_summands: number of values reduced.
        mean_error: predicted systematic (signed) error, real units.
        std_error: predicted random spread, real units.
        envelope: a conservative magnitude bound,
            ``|mean| + 4 * std``.
    """

    n_summands: int
    mean_error: float
    std_error: float

    @property
    def envelope(self) -> float:
        return abs(self.mean_error) + 4.0 * self.std_error


def predict_sum_error(
    profile: AdderErrorProfile, n_summands: int, fmt: FixedPointFormat
) -> PropagationEstimate:
    """First-order prediction of a tree-sum's error.

    Args:
        profile: the adder's characterized statistics (LSB units).
        n_summands: reduction size (>= 1).
        fmt: datapath format supplying the LSB resolution.
    """
    if n_summands < 1:
        raise ValueError(f"n_summands must be >= 1, got {n_summands}")
    ops = n_summands - 1
    mean = ops * profile.mean_error * fmt.resolution
    std = math.sqrt(ops) * profile.mean_error_distance * fmt.resolution
    return PropagationEstimate(
        n_summands=n_summands, mean_error=mean, std_error=std
    )


def measure_sum_error(
    mode: ApproxMode,
    fmt: FixedPointFormat,
    data: np.ndarray,
    trials: int = 32,
    seed: int = 0,
) -> tuple[float, float]:
    """Measured mean and std of tree-sum error over shuffled trials.

    Each trial shuffles ``data`` (changing the pairing inside the tree,
    hence the realized per-add errors) and compares the approximate sum
    against the float64 sum.

    Returns:
        ``(mean_error, std_error)`` in real units.
    """
    if trials < 2:
        raise ValueError(f"trials must be >= 2, got {trials}")
    data = np.asarray(data, dtype=np.float64).reshape(-1)
    rng = np.random.default_rng(seed)
    reference = float(data.sum())
    errors = []
    for _ in range(trials):
        shuffled = rng.permutation(data)
        engine = ApproxEngine(mode, fmt, EnergyLedger())
        errors.append(engine.sum(shuffled) - reference)
    arr = np.array(errors)
    return float(arr.mean()), float(arr.std())
