"""The observer hook the online loop reports through.

:class:`Observer` is the contract: :meth:`~Observer.record` receives
every :class:`~repro.obs.events.TraceEvent` the framework, the
strategies and the energy ledger emit, :meth:`~Observer.on_charge`
receives every ledger charge, and :attr:`~Observer.metrics` is the
registry timed sections and gauges land in.  The base class is a
usable no-op (events are dropped, metrics still accumulate), so custom
observers override only what they need.

:class:`TraceRecorder` is the standard implementation: it buffers the
event stream in memory, aggregates charges into per-mode add/energy
counters, and persists everything as JSONL via :meth:`TraceRecorder.save`.

Every hook site in the hot loop is guarded by ``observer is not None``,
so an unobserved run pays nothing.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.events import TraceEvent
from repro.obs.io import TraceWriter, save_trace
from repro.obs.metrics import MetricsRegistry


class Observer:
    """Base observability hook; a no-op for events, live for metrics.

    Attributes:
        metrics: the run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self):
        self.metrics = MetricsRegistry()

    def record(self, event: TraceEvent) -> None:
        """Receive one control-loop event (default: dropped)."""

    def on_charge(self, mode_name: str, n_adds: int, cost: float) -> None:
        """Receive one energy-ledger charge (default: counters only)."""
        self.metrics.inc(f"adds.{mode_name}", n_adds)
        self.metrics.inc(f"energy.{mode_name}", cost)


class LaneObserver(Observer):
    """Per-lane view of a shared observer, for batched runs.

    ``ApproxIt.run_batch`` binds one of these per lane so every event a
    lane's strategy (or the batched loop itself) emits carries the lane
    id in its ``detail`` — which is what lets
    :func:`~repro.obs.report.summarize_trace` reconstruct a single
    lane's counters from a batch trace.  Charges and metrics forward to
    the shared parent untouched.
    """

    def __init__(self, parent: Observer, lane: int):
        self.parent = parent
        self.lane = int(lane)

    @property
    def metrics(self) -> MetricsRegistry:
        return self.parent.metrics

    def record(self, event: TraceEvent) -> None:
        detail = dict(event.detail)
        detail["lane"] = self.lane
        self.parent.record(
            TraceEvent(event.kind, event.iteration, event.mode, detail)
        )

    def on_charge(self, mode_name: str, n_adds: int, cost: float) -> None:
        self.parent.on_charge(mode_name, n_adds, cost)


class TraceRecorder(Observer):
    """Buffers the full event stream for export and analysis.

    Args:
        label: free-form tag stored in saved trace headers (sweeps use
            ``"<dataset>:<run-label>"``).
    """

    def __init__(self, label: str | None = None):
        super().__init__()
        self.label = label
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def save(self, path: str | Path, meta: dict | None = None) -> Path:
        """Persist the recorded trace as JSONL; returns the path.

        The recorder's ``label`` and its metrics registry ride along in
        the header and trailing record.
        """
        merged_meta = {} if self.label is None else {"label": self.label}
        merged_meta.update(meta or {})
        return save_trace(path, self.events, metrics=self.metrics, meta=merged_meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" label={self.label!r}" if self.label else ""
        return f"TraceRecorder({len(self.events)} events{tag})"


class StreamingRecorder(Observer):
    """Observer that streams every event to disk as it happens.

    Where :class:`TraceRecorder` buffers in memory and persists once at
    the end, this one opens a :class:`~repro.obs.io.TraceWriter`
    immediately and appends (and flushes) each event the moment it is
    recorded — which is what lets another process tail a *running*
    job's trace with ``load_trace(path, partial=True)``.  The service
    layer attaches one per computed job.

    Observation stays passive either way: a run observed by a
    streaming recorder is bit-identical to an unobserved run.

    :meth:`close` appends the trailing metrics record and closes the
    file; it is idempotent and also invoked by ``with``-block exit.

    Args:
        path: destination JSONL file (parents created).
        label: free-form tag stored in the trace header.
        meta: extra header metadata (JSON-ready values only).
    """

    def __init__(
        self,
        path: str | Path,
        label: str | None = None,
        meta: dict | None = None,
    ):
        super().__init__()
        self.label = label
        merged_meta = {} if label is None else {"label": label}
        merged_meta.update(meta or {})
        self._writer = TraceWriter(path, meta=merged_meta)

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def events_written(self) -> int:
        return self._writer.events_written

    def record(self, event: TraceEvent) -> None:
        self._writer.write_event(event)

    def close(self) -> None:
        """Append the metrics record and close the stream (idempotent)."""
        if not self._writer.closed:
            self._writer.write_metrics(self.metrics)
            self._writer.close()

    def __enter__(self) -> "StreamingRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" label={self.label!r}" if self.label else ""
        return (
            f"StreamingRecorder({self._writer.events_written} events "
            f"-> {self._writer.path}{tag})"
        )
