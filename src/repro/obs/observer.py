"""The observer hook the online loop reports through.

:class:`Observer` is the contract: :meth:`~Observer.record` receives
every :class:`~repro.obs.events.TraceEvent` the framework, the
strategies and the energy ledger emit, :meth:`~Observer.on_charge`
receives every ledger charge, and :attr:`~Observer.metrics` is the
registry timed sections and gauges land in.  The base class is a
usable no-op (events are dropped, metrics still accumulate), so custom
observers override only what they need.

:class:`TraceRecorder` is the standard implementation: it buffers the
event stream in memory, aggregates charges into per-mode add/energy
counters, and persists everything as JSONL via :meth:`TraceRecorder.save`.

Every hook site in the hot loop is guarded by ``observer is not None``,
so an unobserved run pays nothing.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.events import TraceEvent
from repro.obs.io import save_trace
from repro.obs.metrics import MetricsRegistry


class Observer:
    """Base observability hook; a no-op for events, live for metrics.

    Attributes:
        metrics: the run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self):
        self.metrics = MetricsRegistry()

    def record(self, event: TraceEvent) -> None:
        """Receive one control-loop event (default: dropped)."""

    def on_charge(self, mode_name: str, n_adds: int, cost: float) -> None:
        """Receive one energy-ledger charge (default: counters only)."""
        self.metrics.inc(f"adds.{mode_name}", n_adds)
        self.metrics.inc(f"energy.{mode_name}", cost)


class LaneObserver(Observer):
    """Per-lane view of a shared observer, for batched runs.

    ``ApproxIt.run_batch`` binds one of these per lane so every event a
    lane's strategy (or the batched loop itself) emits carries the lane
    id in its ``detail`` — which is what lets
    :func:`~repro.obs.report.summarize_trace` reconstruct a single
    lane's counters from a batch trace.  Charges and metrics forward to
    the shared parent untouched.
    """

    def __init__(self, parent: Observer, lane: int):
        self.parent = parent
        self.lane = int(lane)

    @property
    def metrics(self) -> MetricsRegistry:
        return self.parent.metrics

    def record(self, event: TraceEvent) -> None:
        detail = dict(event.detail)
        detail["lane"] = self.lane
        self.parent.record(
            TraceEvent(event.kind, event.iteration, event.mode, detail)
        )

    def on_charge(self, mode_name: str, n_adds: int, cost: float) -> None:
        self.parent.on_charge(mode_name, n_adds, cost)


class TraceRecorder(Observer):
    """Buffers the full event stream for export and analysis.

    Args:
        label: free-form tag stored in saved trace headers (sweeps use
            ``"<dataset>:<run-label>"``).
    """

    def __init__(self, label: str | None = None):
        super().__init__()
        self.label = label
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def save(self, path: str | Path, meta: dict | None = None) -> Path:
        """Persist the recorded trace as JSONL; returns the path.

        The recorder's ``label`` and its metrics registry ride along in
        the header and trailing record.
        """
        merged_meta = {} if self.label is None else {"label": self.label}
        merged_meta.update(meta or {})
        return save_trace(path, self.events, metrics=self.metrics, meta=merged_meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" label={self.label!r}" if self.label else ""
        return f"TraceRecorder({len(self.events)} events{tag})"
