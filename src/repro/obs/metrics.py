"""Counters, gauges and wall-time timers for run instrumentation.

A :class:`MetricsRegistry` is the numeric side of the observability
layer: where :class:`~repro.obs.events.TraceEvent` records *what*
happened, the registry accumulates *how much* — elementary-add and
energy totals per mode (fed by :class:`~repro.arith.engine.EnergyLedger`
charge notifications), strategy gauges, and ``perf_counter`` sections
around the method's ``direction`` / ``update`` / ``objective`` calls so
sweeps can report where wall time actually goes.

Registries are cheap plain-dict holders; they merge associatively
(:meth:`MetricsRegistry.merge`), which is what lets parallel sweep
cells keep per-process registries and combine them at join.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class TimerStat:
    """Accumulated wall time of one named section.

    Attributes:
        total: summed seconds across observations.
        count: number of observations.
    """

    total: float = 0.0
    count: int = 0

    @property
    def mean(self) -> float:
        """Average seconds per observation (0.0 before any)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges and timers.

    Counters accumulate (``inc``), gauges hold the last value
    (``gauge``), timers accumulate wall time and a call count
    (``observe_time`` / the :meth:`time` context manager).
    """

    __slots__ = ("counters", "gauges", "timers")

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest reading."""
        self.gauges[name] = float(value)

    def observe_time(self, name: str, seconds: float) -> None:
        """Record one timed section of ``seconds`` under ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.total += seconds
        stat.count += 1

    @contextmanager
    def time(self, name: str):
        """``with metrics.time("direction"): ...`` — a perf_counter
        section recorded under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe_time(name, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Aggregation and persistence
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and timers add; gauges take the other registry's value
        (last writer wins), matching their point-in-time semantics.
        """
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStat()
            mine.total += stat.total
            mine.count += stat.count

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) view of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                name: {"total": stat.total, "count": stat.count}
                for name, stat in self.timers.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        registry.counters.update(payload.get("counters", {}))
        registry.gauges.update(payload.get("gauges", {}))
        for name, stat in payload.get("timers", {}).items():
            registry.timers[name] = TimerStat(
                total=float(stat["total"]), count=int(stat["count"])
            )
        return registry
