"""Trace analysis: run summaries and the mode-timeline rendering.

:func:`summarize_trace` folds an event stream back into the aggregate
decision counters a :class:`~repro.core.framework.RunResult` reports —
``steps_by_mode``, ``rollbacks``, ``mode_switches`` — plus per-scheme
firing counts, LUT refreshes and handovers, which is both the trace
schema's consistency check and the sweep-analysis entry point.

:func:`render_trace` reconstructs the paper's Figure-3-style mode
timeline from a trace: one row per mode, one column per (bucket of)
executed iterations, showing when the online loop ran where, where it
rolled back, and where it reconfigured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import TraceEvent
from repro.obs.io import TraceFile, load_trace


def _coerce_events(
    trace: "str | Path | TraceFile | Iterable[TraceEvent]",
) -> list[TraceEvent]:
    """Accept a path, a loaded :class:`TraceFile` or a raw event list."""
    if isinstance(trace, (str, Path)):
        return load_trace(trace).events
    if isinstance(trace, TraceFile):
        return list(trace.events)
    return list(trace)


@dataclass
class TraceSummary:
    """Aggregate decision counters reconstructed from an event stream.

    The first three attributes reproduce the equally named
    :class:`~repro.core.framework.RunResult` quantities exactly.

    Attributes:
        iterations: accepted iterations.
        rollbacks: function-scheme rollbacks.
        mode_switches: reconfigurations along the executed trace.
        executed_iterations: accepted + rolled-back iterations.
        steps_by_mode: accepted iterations per mode name.
        scheme_firings: trigger label → firing count.
        lut_refreshes: adaptive LUT rebuilds (offline init included).
        convergence_handovers: premature-convergence escalations.
        reconfig_energy: total switch-energy units charged.
        program_captures: iteration programs compiled
            (``program_capture`` events).
        program_replays: iterations whose engine ops were driven by a
            compiled program (``detail["execution"] == "replayed"``).
        program_bailouts: replays that diverged and fell back to the
            interpreted path (``program_bailout`` events).
        program_lane_bailouts: lane-weighted bailout count of a batched
            (``run_batch``) trace — each lane of a bailing lane-group
            contributes one (its ``program_bailout`` event carries the
            group size in ``detail["lanes"]``).  Zero on solo traces.
    """

    iterations: int = 0
    rollbacks: int = 0
    mode_switches: int = 0
    executed_iterations: int = 0
    steps_by_mode: dict[str, int] = field(default_factory=dict)
    scheme_firings: dict[str, int] = field(default_factory=dict)
    lut_refreshes: int = 0
    convergence_handovers: int = 0
    reconfig_energy: float = 0.0
    program_captures: int = 0
    program_replays: int = 0
    program_bailouts: int = 0
    program_lane_bailouts: int = 0


def summarize_trace(
    trace: "str | Path | TraceFile | Iterable[TraceEvent]",
    lane: int | None = None,
) -> TraceSummary:
    """Fold a trace back into its run's decision counters.

    Args:
        trace: a JSONL trace path, a loaded :class:`TraceFile`, or an
            iterable of :class:`TraceEvent`.
        lane: restrict to one lane of a batched (``run_batch``) trace —
            only events whose ``detail["lane"]`` matches are counted,
            reconstructing that lane's solo counters exactly.  ``None``
            (default) counts every event, which on a batch trace
            aggregates all lanes.
    """
    summary = TraceSummary()
    for event in _coerce_events(trace):
        if lane is not None and event.detail.get("lane") != lane:
            continue
        if event.kind == "iteration":
            summary.executed_iterations += 1
            if event.detail.get("execution") == "replayed":
                summary.program_replays += 1
            if event.detail.get("accepted"):
                summary.iterations += 1
                mode = event.mode or "?"
                summary.steps_by_mode[mode] = summary.steps_by_mode.get(mode, 0) + 1
        elif event.kind == "rollback":
            summary.rollbacks += 1
        elif event.kind == "mode_switch":
            summary.mode_switches += 1
        elif event.kind == "scheme_fired":
            scheme = str(event.detail.get("scheme", "?"))
            summary.scheme_firings[scheme] = summary.scheme_firings.get(scheme, 0) + 1
        elif event.kind == "lut_refresh":
            summary.lut_refreshes += 1
        elif event.kind == "convergence_handover":
            summary.convergence_handovers += 1
        elif event.kind == "reconfig_charge":
            summary.reconfig_energy += float(event.detail.get("energy", 0.0))
        elif event.kind == "program_capture":
            summary.program_captures += 1
        elif event.kind == "program_bailout":
            summary.program_bailouts += 1
            if "lanes" in event.detail:
                summary.program_lane_bailouts += 1
    return summary


def render_trace(
    trace: "str | Path | TraceFile | Iterable[TraceEvent]",
    width: int = 72,
    mode_order: Sequence[str] | None = None,
    lane: int | None = None,
) -> str:
    """ASCII mode timeline of a run (the paper's Figure-3-style view).

    One row per mode, columns spanning the executed iterations (bucketed
    when the run is longer than ``width``): ``#`` marks buckets whose
    iterations ran (mostly) on that mode, ``=`` marks owned buckets
    whose every iteration on that mode was driven by a compiled
    iteration program (capture/replay, :mod:`repro.arith.program`) —
    so a replayed run reads as ``=`` where an interpreted one reads
    ``#`` — and ``x`` marks buckets containing a rollback on it.  A
    footer lists the aggregate counters from :func:`summarize_trace`,
    including program captures/replays/bailouts when the run captured.

    Args:
        trace: a JSONL trace path, :class:`TraceFile` or event iterable.
        width: maximum timeline columns.
        mode_order: row order, top to bottom (e.g. a bank's names
            reversed so the accurate mode sits on top); first-seen
            order when omitted.
        lane: restrict to one lane of a batched trace (see
            :func:`summarize_trace`).
    """
    events = _coerce_events(trace)
    if lane is not None:
        events = [e for e in events if e.detail.get("lane") == lane]
    steps = [e for e in events if e.kind == "iteration"]
    if not steps:
        return "(empty trace: no executed iterations)"
    n = len(steps)
    bucket = max(1, math.ceil(n / width))
    columns = math.ceil(n / bucket)

    modes: list[str] = list(mode_order) if mode_order is not None else []
    for event in steps:
        name = event.mode or "?"
        if name not in modes:
            modes.append(name)

    # Majority mode per bucket, plus rollback / all-replayed flags per
    # (mode, bucket).
    owner: list[str] = []
    rolled: set[tuple[str, int]] = set()
    replayed: set[tuple[str, int]] = set()
    for col in range(columns):
        chunk = steps[col * bucket : (col + 1) * bucket]
        counts: dict[str, int] = {}
        all_replayed: dict[str, bool] = {}
        for event in chunk:
            name = event.mode or "?"
            counts[name] = counts.get(name, 0) + 1
            if not event.detail.get("accepted"):
                rolled.add((name, col))
            all_replayed[name] = all_replayed.get(name, True) and (
                event.detail.get("execution") == "replayed"
            )
        for name, full in all_replayed.items():
            if full:
                replayed.add((name, col))
        owner.append(max(counts, key=lambda name: counts[name]))

    label_width = max(len(name) for name in modes)
    lines = [
        f"Mode timeline ({n} executed iterations, "
        f"1 column = {bucket} iteration{'s' if bucket > 1 else ''})"
    ]
    for name in modes:
        cells = []
        for col in range(columns):
            if (name, col) in rolled:
                cells.append("x")
            elif owner[col] == name:
                cells.append("=" if (name, col) in replayed else "#")
            else:
                cells.append(".")
        lines.append(f"{name:>{label_width}} |{''.join(cells)}|")

    summary = summarize_trace(events)
    firings = ", ".join(
        f"{scheme}:{count}" for scheme, count in sorted(summary.scheme_firings.items())
    )
    program = ""
    if summary.program_captures or summary.program_replays or summary.program_bailouts:
        lanes = (
            f" lane-bailouts:{summary.program_lane_bailouts}"
            if summary.program_lane_bailouts
            else ""
        )
        program = (
            f"; program [captured:{summary.program_captures} "
            f"replayed:{summary.program_replays} "
            f"bailouts:{summary.program_bailouts}{lanes}]"
        )
    lines.append(
        f"{summary.iterations} accepted, {summary.rollbacks} rollbacks, "
        f"{summary.mode_switches} switches, {summary.lut_refreshes} LUT refreshes, "
        f"{summary.convergence_handovers} handovers"
        + (f"; fired [{firings}]" if firings else "")
        + program
    )
    return "\n".join(lines)
