"""Structured run tracing and metrics for the online loop.

The paper's contribution is the online reconfiguration loop, and this
package makes that loop observable: :class:`~repro.obs.events.TraceEvent`
records every control decision, :class:`~repro.obs.metrics.MetricsRegistry`
accumulates where time and energy go, and
:class:`~repro.obs.observer.TraceRecorder` is the hook
``ApproxIt.run(observer=...)`` threads through the framework, the
strategies and the energy ledger.  Traces persist as schema-versioned
JSONL (:mod:`repro.obs.io`) and fold back into run-level summaries and
a Figure-3-style mode timeline (:mod:`repro.obs.report`).

See ``docs/observability.md`` for the schema and usage.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.io import (
    TRACE_SCHEMA_VERSION,
    TraceFile,
    TraceWriter,
    load_trace,
    save_trace,
)
from repro.obs.metrics import MetricsRegistry, TimerStat
from repro.obs.observer import (
    LaneObserver,
    Observer,
    StreamingRecorder,
    TraceRecorder,
)
from repro.obs.report import TraceSummary, render_trace, summarize_trace

__all__ = [
    "EVENT_KINDS",
    "LaneObserver",
    "MetricsRegistry",
    "Observer",
    "StreamingRecorder",
    "TRACE_SCHEMA_VERSION",
    "TimerStat",
    "TraceEvent",
    "TraceFile",
    "TraceRecorder",
    "TraceSummary",
    "TraceWriter",
    "load_trace",
    "render_trace",
    "save_trace",
    "summarize_trace",
]
