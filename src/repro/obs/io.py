"""JSONL persistence for run traces.

A trace file is newline-delimited JSON, schema-versioned like
:mod:`repro.core.reporting`:

* line 1 — a header record: ``{"record": "header", "schema": N,
  "meta": {...}}``;
* one ``{"record": "event", ...}`` line per
  :class:`~repro.obs.events.TraceEvent`, in emission order;
* optionally a trailing ``{"record": "metrics", "metrics": {...}}``
  line carrying a :class:`~repro.obs.metrics.MetricsRegistry` dump.

JSONL keeps traces streamable and appendable: a sweep can ``cat``
per-cell files together for ad-hoc analysis, and a crashed run's
partial trace is still loadable line by line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

#: Schema tag written into every trace header.
TRACE_SCHEMA_VERSION = 1


@dataclass
class TraceFile:
    """A loaded trace: header metadata, events and optional metrics.

    Attributes:
        schema: the file's schema version.
        meta: free-form header metadata (dataset, label, strategy, ...).
        events: the event stream in emission order.
        metrics: the run's metrics registry; empty when the file
            carried none.
    """

    schema: int
    meta: dict = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


def save_trace(
    path: str | Path,
    events: Iterable[TraceEvent],
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> Path:
    """Write a trace to ``path`` as JSONL; returns the path.

    Args:
        path: destination file (parent directories are created).
        events: the event stream, in order.
        metrics: optional registry appended as a trailing record.
        meta: optional header metadata (JSON-ready values only).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "record": "header",
                "schema": TRACE_SCHEMA_VERSION,
                "meta": dict(meta or {}),
            }
        )
    ]
    for event in events:
        lines.append(json.dumps({"record": "event", **event.to_dict()}))
    if metrics is not None:
        lines.append(json.dumps({"record": "metrics", "metrics": metrics.to_dict()}))
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | Path) -> TraceFile:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: on a missing/invalid header, an unsupported schema,
            or an unknown record type.
    """
    lines = [line for line in Path(path).read_text().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    if header.get("record") != "header":
        raise ValueError(f"trace file {path} does not start with a header record")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {schema!r}; expected {TRACE_SCHEMA_VERSION}"
        )
    trace = TraceFile(schema=int(schema), meta=dict(header.get("meta", {})))
    for line in lines[1:]:
        record = json.loads(line)
        kind = record.get("record")
        if kind == "event":
            trace.events.append(TraceEvent.from_dict(record))
        elif kind == "metrics":
            trace.metrics = MetricsRegistry.from_dict(record.get("metrics", {}))
        else:
            raise ValueError(f"unknown trace record type {kind!r}")
    return trace
