"""JSONL persistence for run traces.

A trace file is newline-delimited JSON, schema-versioned like
:mod:`repro.core.reporting`:

* line 1 — a header record: ``{"record": "header", "schema": N,
  "meta": {...}}``;
* one ``{"record": "event", ...}`` line per
  :class:`~repro.obs.events.TraceEvent`, in emission order;
* optionally a trailing ``{"record": "metrics", "metrics": {...}}``
  line carrying a :class:`~repro.obs.metrics.MetricsRegistry` dump.

JSONL keeps traces streamable and appendable: a sweep can ``cat``
per-cell files together for ad-hoc analysis, and a crashed or still
running run's partial trace is recoverable line by line.

Durability comes in two flavors:

* :func:`save_trace` writes the whole file **atomically** (temp file +
  ``os.replace``, via :func:`repro.ioutil.atomic_write_text`): a reader
  racing the writer — or a crash mid-save — observes either the
  previous complete snapshot or the new one, never a truncated file.
* :class:`TraceWriter` **streams**: the header goes out immediately and
  every record is appended (and flushed) as it arrives, so a live run's
  trace can be tailed from another process while it grows.  A crash can
  leave at most one partial final line; ``load_trace(...,
  partial=True)`` recovers every complete record before it and reports
  the truncation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.ioutil import atomic_write_text
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

#: Schema tag written into every trace header.
TRACE_SCHEMA_VERSION = 1


@dataclass
class TraceFile:
    """A loaded trace: header metadata, events and optional metrics.

    Attributes:
        schema: the file's schema version.
        meta: free-form header metadata (dataset, label, strategy, ...).
        events: the event stream in emission order.
        metrics: the run's metrics registry; empty when the file
            carried none.
        truncated: only ever ``True`` for ``load_trace(...,
            partial=True)`` loads — the file ended in (or contained) a
            malformed record, everything before it was recovered, and
            the stream is in progress or was cut by a crash.
    """

    schema: int
    meta: dict = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    truncated: bool = False


def _encode_header(meta: dict | None) -> str:
    return json.dumps(
        {
            "record": "header",
            "schema": TRACE_SCHEMA_VERSION,
            "meta": dict(meta or {}),
        }
    )


def _encode_event(event: TraceEvent) -> str:
    return json.dumps({"record": "event", **event.to_dict()})


def _encode_metrics(metrics: MetricsRegistry) -> str:
    return json.dumps({"record": "metrics", "metrics": metrics.to_dict()})


def save_trace(
    path: str | Path,
    events: Iterable[TraceEvent],
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> Path:
    """Write a trace to ``path`` as JSONL; returns the path.

    The write is atomic: the lines are assembled in memory and land via
    a temp file + ``os.replace``, so a crash mid-save leaves the
    previous complete snapshot in place (strict :func:`load_trace`
    keeps working) and a concurrent reader never sees a partial file.
    Runs that need their trace on disk *while still executing* should
    stream through a :class:`TraceWriter` instead.

    Args:
        path: destination file (parent directories are created).
        events: the event stream, in order.
        metrics: optional registry appended as a trailing record.
        meta: optional header metadata (JSON-ready values only).
    """
    lines = [_encode_header(meta)]
    for event in events:
        lines.append(_encode_event(event))
    if metrics is not None:
        lines.append(_encode_metrics(metrics))
    return atomic_write_text(path, "\n".join(lines) + "\n")


class TraceWriter:
    """Append-mode streaming writer for live traces.

    The header record is written (and flushed) on construction; every
    :meth:`write_event` / :meth:`write_metrics` appends one complete
    line and flushes it, so another process can tail the file with
    ``load_trace(path, partial=True)`` while the run is still going.

    Unlike :func:`save_trace` the file is built in place, so a crash
    mid-record leaves a partial final line — but only the final line:
    every earlier record was flushed whole.  ``partial=True`` loads
    recover all of them and flag the truncation; re-running the job
    rewrites the file from scratch.

    Usable as a context manager; :meth:`close` is idempotent.

    Args:
        path: destination file (parent directories are created).
        meta: optional header metadata (JSON-ready values only).
    """

    def __init__(self, path: str | Path, meta: dict | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.events_written = 0
        self._closed = False
        self._write_line(_encode_header(meta))

    def _write_line(self, line: str) -> None:
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._handle.write(line + "\n")
        self._handle.flush()

    def write_event(self, event: TraceEvent) -> None:
        """Append one event record and flush it to the OS."""
        self._write_line(_encode_event(event))
        self.events_written += 1

    def write_metrics(self, metrics: MetricsRegistry) -> None:
        """Append the trailing metrics record (normally right before
        :meth:`close`)."""
        self._write_line(_encode_metrics(metrics))

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_trace(path: str | Path, partial: bool = False) -> TraceFile:
    """Read a trace previously written by :func:`save_trace` or a
    :class:`TraceWriter`.

    Args:
        path: the trace file.
        partial: best-effort mode for in-progress or crash-truncated
            streams.  Instead of raising on the first malformed or
            incomplete record, parsing stops there: every complete
            record up to that point comes back and
            :attr:`TraceFile.truncated` is set.  The header line must
            still be complete and valid — without it the schema (and
            hence the meaning of every later line) is unknown.

    Raises:
        ValueError: on a missing/invalid header, an unsupported schema,
            or — in strict mode only — a malformed line or unknown
            record type.
    """
    lines = [line for line in Path(path).read_text().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"trace file {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise ValueError(
            f"trace file {path} does not start with a header record"
        ) from None
    if not isinstance(header, dict) or header.get("record") != "header":
        raise ValueError(f"trace file {path} does not start with a header record")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {schema!r}; expected {TRACE_SCHEMA_VERSION}"
        )
    trace = TraceFile(schema=int(schema), meta=dict(header.get("meta", {})))
    for line in lines[1:]:
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"non-object trace record {record!r}")
            kind = record.get("record")
            if kind == "event":
                event = TraceEvent.from_dict(record)
            elif kind != "metrics":
                raise ValueError(f"unknown trace record type {kind!r}")
        except (json.JSONDecodeError, ValueError) as exc:
            if partial:
                trace.truncated = True
                break
            if isinstance(exc, json.JSONDecodeError):
                raise ValueError(
                    f"malformed trace record in {path}: {line[:80]!r}"
                ) from None
            raise
        if kind == "event":
            trace.events.append(event)
        else:
            trace.metrics = MetricsRegistry.from_dict(record.get("metrics", {}))
    return trace
