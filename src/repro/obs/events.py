"""Typed trace events of the online reconfiguration loop.

Every control decision the paper's Section-4 loop takes — scheme
firings, rollbacks, mode switches, LUT refreshes, convergence handovers,
reconfiguration charges — is recorded as one :class:`TraceEvent`.  The
event stream is the ground truth the observability layer is built on:
:func:`repro.obs.report.summarize_trace` reconstructs a run's
``steps_by_mode`` / ``rollbacks`` / ``mode_switches`` from it exactly,
and :func:`repro.obs.io.save_trace` persists it as JSONL.

Event kinds
-----------
``iteration``
    One executed iteration (accepted or rolled back).  Emitted by
    :meth:`ApproxIt.run` after every pass through the online loop.
    ``detail``: ``objective`` (exact f at the new iterate), ``accepted``
    (bool), ``reason`` (the strategy's decision label) and — on
    program-capturing runs — ``execution`` (``captured`` / ``replayed``
    / ``interpreted``: how the iteration's engine ops were driven).
``scheme_fired``
    A reconfiguration trigger fired inside a strategy's ``decide``:
    ``detail["scheme"]`` is ``function`` / ``gradient`` / ``quality`` /
    ``quality-window`` (incremental, adaptive) or ``pid`` (the baseline's
    controller actuating a level change).
``rollback``
    The function scheme's error recovery: the iteration was discarded.
    ``detail["next_mode"]`` is the mode the retry runs on.
``mode_switch``
    The mode of the upcoming iteration differs from the previous
    iteration's mode.  ``detail["previous"]`` names the old mode.  The
    count of these events equals ``RunResult.mode_switches``.
``reconfig_charge``
    The energy ledger was charged ``switch_energy`` units for reloading
    the configuration latches (only emitted when ``switch_energy > 0``).
    ``detail["energy"]`` carries the charge.
``convergence_handover``
    A tolerance pass (or datapath fixed point) in an approximate mode
    was *not* accepted; the run handed over to higher accuracy for
    verification (Section 3.2).  ``detail["next_mode"]`` names it.
``lut_refresh``
    The adaptive strategy re-solved the Eq.-5 LP and rebuilt its angle
    LUT.  ``detail``: ``budget`` and the new ``shares``.  The offline
    initialization in ``start()`` is emitted with ``iteration == -1``.
``program_capture``
    The capture/replay layer (:mod:`repro.arith.program`) compiled this
    iteration's interpreted op trace into an :class:`IterationProgram`
    for the current mode.  ``detail["steps"]`` is the program length.
``program_bailout``
    A replayed iteration diverged from its program's structure and fell
    back to the interpreted path; the program was dropped and the next
    iteration on this mode re-records.  ``detail["reason"]``:
    ``structure`` / ``shorter-iteration`` (op sequence changed),
    ``shape`` / ``operand`` (an operand changed shape or kind), or
    ``saturation`` (an add left the recorded saturation envelope).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every kind a :class:`TraceEvent` may carry.
EVENT_KINDS = frozenset(
    {
        "iteration",
        "scheme_fired",
        "rollback",
        "mode_switch",
        "reconfig_charge",
        "convergence_handover",
        "lut_refresh",
        "program_capture",
        "program_bailout",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One control-loop event.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        iteration: 0-based *executed*-iteration index the event belongs
            to (rolled-back iterations count; ``-1`` marks offline-stage
            events such as the adaptive strategy's initial LUT build).
        mode: name of the mode the event concerns, when applicable.
        detail: kind-specific payload (plain JSON-ready scalars only).
    """

    kind: str
    iteration: int
    mode: str | None = None
    detail: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {sorted(EVENT_KINDS)}"
            )

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) view of the event."""
        payload = {"kind": self.kind, "iteration": int(self.iteration)}
        if self.mode is not None:
            payload["mode"] = self.mode
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output.

        Raises:
            ValueError: on a missing kind/iteration or an unknown kind.
        """
        try:
            kind = payload["kind"]
            iteration = int(payload["iteration"])
        except KeyError as missing:
            raise ValueError(f"event record is missing field {missing}") from None
        return cls(
            kind=kind,
            iteration=iteration,
            mode=payload.get("mode"),
            detail=dict(payload.get("detail", {})),
        )
