"""Bit-level helpers shared by the adder and multiplier models.

All models represent machine words as numpy ``int64`` arrays holding
*unsigned* values in ``[0, 2**width)``.  Signed (two's-complement)
quantities are converted at the model boundary with
:func:`to_unsigned` / :func:`to_signed`.  ``int64`` is used instead of
``uint64`` because mixed ``uint64``/python-``int`` arithmetic silently
promotes to ``float64`` in numpy; with widths capped at
:data:`MAX_WIDTH` bits every intermediate fits ``int64`` exactly.

Besides the word plumbing, this module hosts the two *bit-parallel
kernels* the speculative adder families are built on:

* :func:`windowed_carry_add` — addition whose carry into bit ``i`` is
  speculated from a per-bit look-back window (ACA and GeAr are both
  instances of this shape, with different window layouts); and
* :func:`segmented_speculative_add` — SWAR-style segmented addition with
  one-segment carry speculation (the ETA-II shape).

Both operate on whole ``int64`` words, so a batch of ``n`` additions
costs a handful of vector operations instead of an ``O(width)`` python
loop per call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Widest supported word.  ``a + b`` of two ``width``-bit unsigned values
#: needs ``width + 1`` bits, and int64 holds 63 value bits, so 60 leaves
#: comfortable slack for every internal window sum used by the models.
MAX_WIDTH = 60


def check_width(width: int) -> int:
    """Validate a word width, returning it for chaining.

    Raises:
        ValueError: if ``width`` is not an ``int`` in ``[2, MAX_WIDTH]``.
    """
    if not isinstance(width, (int, np.integer)):
        raise ValueError(f"width must be an integer, got {width!r}")
    if not 2 <= width <= MAX_WIDTH:
        raise ValueError(f"width must be in [2, {MAX_WIDTH}], got {width}")
    return int(width)


def word_mask(width: int) -> int:
    """All-ones mask for a ``width``-bit word."""
    return (1 << check_width(width)) - 1


def to_unsigned(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret two's-complement signed values as unsigned words.

    Values outside the representable signed range wrap modulo
    ``2**width``, matching hardware overflow semantics.
    """
    arr = np.asarray(values, dtype=np.int64)
    return arr & word_mask(width)


def to_signed(words: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret unsigned ``width``-bit words as two's-complement."""
    arr = np.asarray(words, dtype=np.int64)
    sign_bit = np.int64(1) << np.int64(width - 1)
    return (arr ^ sign_bit) - sign_bit


def extract_field(words: np.ndarray, lo: int, length: int) -> np.ndarray:
    """Extract ``length`` bits starting at bit ``lo`` (LSB = bit 0)."""
    if length <= 0:
        return np.zeros_like(np.asarray(words, dtype=np.int64))
    field_mask = np.int64((1 << length) - 1)
    return (np.asarray(words, dtype=np.int64) >> np.int64(lo)) & field_mask


def get_bit(words: np.ndarray, index: int) -> np.ndarray:
    """Return bit ``index`` of each word as 0/1 int64."""
    return (np.asarray(words, dtype=np.int64) >> np.int64(index)) & np.int64(1)


def signed_range(width: int) -> tuple[int, int]:
    """Inclusive ``(min, max)`` of a signed ``width``-bit word."""
    check_width(width)
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def saturate_signed(values: np.ndarray, width: int) -> np.ndarray:
    """Clamp signed values into the representable ``width``-bit range."""
    lo, hi = signed_range(width)
    return np.clip(np.asarray(values, dtype=np.int64), lo, hi)


def popcount(value: int) -> int:
    """Number of set bits of a non-negative python integer."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return bin(value).count("1")


def reduction_levels(n: int) -> tuple[tuple[int, bool], ...]:
    """Level geometry of a balanced binary-tree reduction over ``n`` items.

    Returns one ``(half, odd)`` pair per tree level, root-ward order:
    ``half`` operand pairs fold at that level and, when ``odd`` is set,
    one unpaired tail element is carried into the next level unchanged.
    ``n`` items therefore cost exactly ``sum(half for half, _ in levels)
    == n - 1`` elementary additions, whatever the shape.

    Raises:
        ValueError: if ``n`` is negative.
    """
    if n < 0:
        raise ValueError(f"reduction size must be >= 0, got {n}")
    levels = []
    while n > 1:
        half = n // 2
        odd = bool(n % 2)
        levels.append((half, odd))
        n = half + 1 if odd else half
    return tuple(levels)


# ----------------------------------------------------------------------
# Bit-parallel speculative-addition kernels
# ----------------------------------------------------------------------
def windowed_carry_masks(window_lo: Sequence[int]) -> tuple[int, ...]:
    """Precompute the per-depth masks :func:`windowed_carry_add` needs.

    ``window_lo[i]`` is the lowest bit position participating in the
    speculated carry into result bit ``i`` (the carry chain is cut below
    it).  The returned tuple has one mask per look-back depth ``d``:
    ``masks[d - 1]`` holds a 1 at every bit ``i`` whose window reaches at
    least ``d`` positions back, i.e. ``i - window_lo[i] >= d``.

    Raises:
        ValueError: if any ``window_lo[i]`` lies outside ``[0, i]``.
    """
    depths = []
    for i, lo in enumerate(window_lo):
        lo = int(lo)
        if not 0 <= lo <= i:
            raise ValueError(
                f"window_lo[{i}] must be in [0, {i}], got {lo}"
            )
        depths.append(i - lo)
    max_depth = max(depths, default=0)
    masks = []
    for d in range(1, max_depth + 1):
        mask = 0
        for i, depth in enumerate(depths):
            if depth >= d:
                mask |= 1 << i
        masks.append(mask)
    return tuple(masks)


def windowed_carry_add(
    a: np.ndarray, b: np.ndarray, width: int, masks: Sequence[int]
) -> np.ndarray:
    """Bit-parallel addition with per-bit truncated carry speculation.

    Result bit ``i`` is ``a_i ^ b_i ^ c_i`` where the carry ``c_i`` is
    computed from the window encoded in ``masks`` (built once with
    :func:`windowed_carry_masks`) instead of the full chain: a generate
    at bit ``i - d`` reaches bit ``i`` only if the window spans ``d``
    positions and every bit strictly between propagates.  With ``p = a ^
    b`` and ``g = a & b`` this is the classic carry-chain expansion

    ``c = OR_d (g << d) & (p << 1) & ... & (p << d-1) & masks[d-1]``

    evaluated with one running propagate product, so the whole batch
    costs ``O(max_depth)`` vector ops — independent of batch size and of
    ``width``.  Exhaustive equivalence with the bit-serial references is
    locked in by ``tests/hardware/test_adder_equivalence.py``.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    word = np.int64(word_mask(width))
    prop = a ^ b
    gen = a & b
    carry = np.zeros_like(prop)
    run = None  # running AND of (prop << 1) .. (prop << d-1)
    last = len(masks)
    for d, mask in enumerate(masks, start=1):
        term = gen << np.int64(d)
        if run is not None:
            term = term & run
        carry |= term & np.int64(mask)
        if d < last:
            shifted = prop << np.int64(d)
            run = shifted if run is None else run & shifted
    return (prop ^ carry) & word


def segment_top_mask(width: int, spans: Sequence[tuple[int, int]]) -> int:
    """Mask of the most significant bit of each ``(lo, length)`` segment.

    The spans must tile ``[0, width)`` contiguously, LSB segment first —
    the layout :func:`segmented_speculative_add` operates on.

    Raises:
        ValueError: if the spans do not tile the word.
    """
    check_width(width)
    mask = 0
    expect = 0
    for lo, length in spans:
        if lo != expect or length < 1:
            raise ValueError(f"spans must tile [0, {width}) contiguously")
        mask |= 1 << (lo + length - 1)
        expect = lo + length
    if expect != width:
        raise ValueError(f"spans cover [0, {expect}), expected [0, {width})")
    return mask


def segment_local_sums(
    a: np.ndarray, b: np.ndarray, width: int, top_mask: int
) -> np.ndarray:
    """Per-segment sums with zero carry-in, all segments at once.

    ``top_mask`` marks the MSB of each segment (see
    :func:`segment_top_mask`).  Each segment of the result holds ``(a_seg
    + b_seg) mod 2**len`` — carries never cross a segment boundary,
    because masking each operand's segment-top bit before the word-wide
    addition leaves the per-segment partial sums strictly below the
    boundary, and the top bits are patched back in by XOR.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    top = np.int64(top_mask)
    body = np.int64(word_mask(width) & ~top_mask)
    blocked = (a & body) + (b & body)
    return blocked ^ ((a ^ b) & top)


def segmented_speculative_add(
    a: np.ndarray, b: np.ndarray, width: int, top_mask: int
) -> np.ndarray:
    """Segmented addition with one-segment carry speculation (ETA-II).

    Each segment (delimited by ``top_mask``, the MSB of every segment)
    adds exactly, but the carry *into* a segment is the carry-out of the
    previous segment computed with zero carry-in — carries never cross
    more than one boundary.  All segments are evaluated simultaneously
    with the SWAR blocking trick: masking each segment's top bit before
    adding keeps the per-segment sums from rippling across boundaries,
    and the top bit and speculated carries are patched in afterwards.
    Constant vector-op count regardless of segment size or count.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    word = np.int64(word_mask(width))
    top = np.int64(top_mask)
    body = np.int64(word_mask(width) & ~top_mask)

    axb = a ^ b
    # Per-segment sums of the sub-top bits; carries cannot leave a
    # segment because each operand's top bit is masked off.
    blocked = (a & body) + (b & body)
    # Full per-segment sum (mod segment size) with zero carry-in.
    psum = blocked ^ (axb & top)
    # Speculated carry-out of each segment = majority(a_msb, b_msb, c_in)
    # where the carry into the MSB is that bit of the blocked sum.
    carry_out = ((a & b) | (axb & blocked)) & top
    spec = (carry_out << np.int64(1)) & word
    # Fold the speculated carries in: they may ripple within a segment
    # (the sub-top bits sum to < 2**(len-1), so +1 cannot escape it).
    low = (psum & body) + spec
    return (low ^ (psum & top)) & word
