"""Bit-level helpers shared by the adder and multiplier models.

All models represent machine words as numpy ``int64`` arrays holding
*unsigned* values in ``[0, 2**width)``.  Signed (two's-complement)
quantities are converted at the model boundary with
:func:`to_unsigned` / :func:`to_signed`.  ``int64`` is used instead of
``uint64`` because mixed ``uint64``/python-``int`` arithmetic silently
promotes to ``float64`` in numpy; with widths capped at
:data:`MAX_WIDTH` bits every intermediate fits ``int64`` exactly.
"""

from __future__ import annotations

import numpy as np

#: Widest supported word.  ``a + b`` of two ``width``-bit unsigned values
#: needs ``width + 1`` bits, and int64 holds 63 value bits, so 60 leaves
#: comfortable slack for every internal window sum used by the models.
MAX_WIDTH = 60


def check_width(width: int) -> int:
    """Validate a word width, returning it for chaining.

    Raises:
        ValueError: if ``width`` is not an ``int`` in ``[2, MAX_WIDTH]``.
    """
    if not isinstance(width, (int, np.integer)):
        raise ValueError(f"width must be an integer, got {width!r}")
    if not 2 <= width <= MAX_WIDTH:
        raise ValueError(f"width must be in [2, {MAX_WIDTH}], got {width}")
    return int(width)


def word_mask(width: int) -> int:
    """All-ones mask for a ``width``-bit word."""
    return (1 << check_width(width)) - 1


def to_unsigned(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret two's-complement signed values as unsigned words.

    Values outside the representable signed range wrap modulo
    ``2**width``, matching hardware overflow semantics.
    """
    arr = np.asarray(values, dtype=np.int64)
    return arr & word_mask(width)


def to_signed(words: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret unsigned ``width``-bit words as two's-complement."""
    arr = np.asarray(words, dtype=np.int64)
    sign_bit = np.int64(1) << np.int64(width - 1)
    return (arr ^ sign_bit) - sign_bit


def extract_field(words: np.ndarray, lo: int, length: int) -> np.ndarray:
    """Extract ``length`` bits starting at bit ``lo`` (LSB = bit 0)."""
    if length <= 0:
        return np.zeros_like(np.asarray(words, dtype=np.int64))
    field_mask = np.int64((1 << length) - 1)
    return (np.asarray(words, dtype=np.int64) >> np.int64(lo)) & field_mask


def get_bit(words: np.ndarray, index: int) -> np.ndarray:
    """Return bit ``index`` of each word as 0/1 int64."""
    return (np.asarray(words, dtype=np.int64) >> np.int64(index)) & np.int64(1)


def signed_range(width: int) -> tuple[int, int]:
    """Inclusive ``(min, max)`` of a signed ``width``-bit word."""
    check_width(width)
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def saturate_signed(values: np.ndarray, width: int) -> np.ndarray:
    """Clamp signed values into the representable ``width``-bit range."""
    lo, hi = signed_range(width)
    return np.clip(np.asarray(values, dtype=np.int64), lo, hi)


def popcount(value: int) -> int:
    """Number of set bits of a non-negative python integer."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return bin(value).count("1")
