"""Bit-serial reference implementations of every adder family.

The production models in this package evaluate whole operand batches
with the bit-parallel kernels of :mod:`repro.hardware.bitops`.  This
module retains the straightforward bit-serial formulations — the carry
loops a hardware description would spell out — so that

* the exhaustive equivalence tests can check the vectorized datapaths
  bit-for-bit against an independent implementation of each published
  design, and
* the ``benchmarks/perf`` harness has a stable baseline to measure the
  bit-parallel kernels' speedup against.

Each function is elementwise-vectorized over numpy arrays but iterates
bit-by-bit (or segment-by-segment) exactly as the scalar definitions
do.  They are deliberately *not* used on any production path.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


def exact_add(width: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ripple-carry addition, one full adder per bit."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    result = np.zeros_like(a)
    carry = np.zeros_like(a)
    for i in range(width):
        s = bitops.get_bit(a, i) + bitops.get_bit(b, i) + carry
        result |= (s & np.int64(1)) << np.int64(i)
        carry = s >> np.int64(1)
    return result


def loa_add(width: int, approx_bits: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """LOA: OR gates on the low part, ripple carry above, AND carry guess."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    k = approx_bits
    if k == 0:
        return exact_add(width, a, b)
    result = np.zeros_like(a)
    for i in range(k):
        result |= (bitops.get_bit(a, i) | bitops.get_bit(b, i)) << np.int64(i)
    carry = bitops.get_bit(a, k - 1) & bitops.get_bit(b, k - 1)
    for i in range(k, width):
        s = bitops.get_bit(a, i) + bitops.get_bit(b, i) + carry
        result |= (s & np.int64(1)) << np.int64(i)
        carry = s >> np.int64(1)
    return result


def truncated_add(
    width: int, approx_bits: int, fill: str, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Truncation adder: constant low bits, ripple carry above."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    k = approx_bits
    if k == 0:
        return exact_add(width, a, b)
    low = np.int64((1 << k) - 1) if fill == "one" else np.int64(0)
    result = np.full_like(a, low)
    carry = np.zeros_like(a)
    for i in range(k, width):
        s = bitops.get_bit(a, i) + bitops.get_bit(b, i) + carry
        result |= (s & np.int64(1)) << np.int64(i)
        carry = s >> np.int64(1)
    return result


def aca_add(
    width: int, lookback_bits: int, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """ACA: per-bit carry speculated from a sliding look-back window.

    This is the pre-vectorization production implementation, retained
    verbatim: one windowed sub-addition per result bit.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if lookback_bits >= width - 1:
        return exact_add(width, a, b)
    k = lookback_bits
    result = np.zeros_like(a)
    for i in range(width):
        lo = max(0, i - k)
        window = i - lo  # number of look-back bits actually available
        wa = bitops.extract_field(a, lo, window)
        wb = bitops.extract_field(b, lo, window)
        carry = (wa + wb) >> np.int64(window) if window else np.zeros_like(a)
        s = bitops.get_bit(a, i) + bitops.get_bit(b, i) + carry
        result |= (s & np.int64(1)) << np.int64(i)
    return result


def etaii_add(
    width: int, segment_bits: int, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """ETA-II: segment-serial addition with one-segment carry speculation.

    The pre-vectorization production implementation, retained verbatim.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if segment_bits >= width:
        return exact_add(width, a, b)
    result = np.zeros_like(a)
    carry = np.zeros_like(a)
    lo = 0
    while lo < width:
        length = min(segment_bits, width - lo)
        seg_a = bitops.extract_field(a, lo, length)
        seg_b = bitops.extract_field(b, lo, length)
        seg_sum = seg_a + seg_b + carry
        seg_mask = np.int64((1 << length) - 1)
        result |= (seg_sum & seg_mask) << np.int64(lo)
        # Speculated carry into the *next* segment: carry-out of this
        # segment computed without its own incoming carry.
        carry = (seg_a + seg_b) >> np.int64(length)
        lo += length
    return result


def gear_add(
    width: int,
    result_bits: int,
    previous_bits: int,
    a: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    """GeAr(R, P): sub-adder-serial overlapping windowed addition.

    The pre-vectorization production implementation, retained verbatim.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    r, p = result_bits, previous_bits
    if r + p >= width:
        return exact_add(width, a, b)
    result = np.zeros_like(a)
    first_span = min(r + p, width)
    spans = [(0, 0)]
    result_lo = first_span
    while result_lo < width:
        spans.append((result_lo, max(0, result_lo - p)))
        result_lo += r
    for idx, (result_lo, window_lo) in enumerate(spans):
        if idx == 0:
            length = first_span
            produced_lo, produced_len = 0, length
        else:
            length = min(result_lo + r, width) - window_lo
            produced_lo, produced_len = result_lo, min(r, width - result_lo)
        wa = bitops.extract_field(a, window_lo, length)
        wb = bitops.extract_field(b, window_lo, length)
        s = wa + wb
        keep_shift = np.int64(produced_lo - window_lo)
        keep_mask = np.int64((1 << produced_len) - 1)
        result |= ((s >> keep_shift) & keep_mask) << np.int64(produced_lo)
    return result


def reference_add_unsigned(
    adder: AdderModel, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Dispatch to the bit-serial reference of ``adder``'s family.

    Raises:
        KeyError: for wrapper/stateful families (``faulty``,
            ``reconfigurable``) that have no standalone reference.
    """
    family = adder.family
    if family == "exact":
        return exact_add(adder.width, a, b)
    if family == "loa":
        return loa_add(adder.width, adder.approx_bits, a, b)
    if family == "truncated":
        return truncated_add(adder.width, adder.approx_bits, adder.fill, a, b)
    if family == "aca":
        return aca_add(adder.width, adder.lookback_bits, a, b)
    if family == "etaii":
        return etaii_add(adder.width, adder.segment_bits, a, b)
    if family == "gear":
        return gear_add(adder.width, adder.result_bits, adder.previous_bits, a, b)
    raise KeyError(f"no bit-serial reference for adder family {family!r}")
