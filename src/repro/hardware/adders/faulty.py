"""Fault-injecting adder wrapper.

Wraps any behavioural adder and flips result bits with a configurable
per-bit probability — the standard soft-error / voltage-overscaling
fault model.  Used by the failure-injection tests to demonstrate that
ApproxIt's recovery machinery (the function scheme's rollback and the
escalation ladder) keeps runs convergent even when a mode misbehaves
*worse* than its offline characterization promised — precisely the case
the paper's function scheme exists for ("the offline choice of impact
characterization cannot represent all cases").

The fault stream is seeded and self-contained, so runs stay
reproducible.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class FaultyAdder(AdderModel):
    """An adder whose outputs suffer random bit flips.

    Args:
        inner: the behavioural adder to wrap.
        flip_probability: per-output-bit flip probability per operation.
        seed: fault-stream seed.
        max_bit: restrict flips to bits ``[0, max_bit)``; ``None`` exposes
            every output bit (including the sign) to faults.
    """

    family = "faulty"

    def __init__(
        self,
        inner: AdderModel,
        flip_probability: float,
        seed: int = 0,
        max_bit: int | None = None,
    ):
        super().__init__(inner.width)
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip_probability must be in [0, 1], got {flip_probability}"
            )
        if max_bit is not None and not 0 < max_bit <= inner.width:
            raise ValueError(f"max_bit must be in (0, width], got {max_bit}")
        self.inner = inner
        self.flip_probability = float(flip_probability)
        self.fault_bits = inner.width if max_bit is None else int(max_bit)
        self._rng = np.random.default_rng(seed)
        self.injected_flips = 0

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self.inner.add_unsigned(a, b)
        if self.flip_probability == 0.0:
            return out
        flips = self._rng.random((out.size, self.fault_bits)) < self.flip_probability
        if not flips.any():
            return out
        self.injected_flips += int(flips.sum())
        weights = (np.int64(1) << np.arange(self.fault_bits, dtype=np.int64))
        masks = (flips * weights).sum(axis=1).astype(np.int64).reshape(out.shape)
        word = np.int64(bitops.word_mask(self.width))
        return (out ^ masks) & word

    def cell_inventory(self) -> Counter:
        return self.inner.cell_inventory()

    def critical_path_cells(self) -> int:
        return self.inner.critical_path_cells()

    @property
    def is_exact(self) -> bool:
        # Even wrapping an exact adder, a nonzero fault rate is inexact.
        return self.inner.is_exact and self.flip_probability == 0.0

    def describe(self) -> str:
        return (
            f"FaultyAdder({self.inner.describe()}, "
            f"p={self.flip_probability:g}, bits<{self.fault_bits})"
        )
