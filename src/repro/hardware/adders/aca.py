"""Almost Correct Adder (ACA).

Verma et al.'s design: each result bit ``i`` is computed with a carry
speculated from only the previous ``lookback_bits`` bit positions rather
than the full carry chain.  Equivalent to a sliding-window adder; the
probability that a real carry chain exceeds the window shrinks
geometrically with the window size.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class AcaAdder(AdderModel):
    """ACA with a configurable carry look-back window.

    Args:
        width: total word width in bits.
        lookback_bits: how many previous bit positions participate in the
            speculated carry for each result bit.  ``lookback_bits >=
            width - 1`` degenerates to an exact adder.
    """

    family = "aca"

    def __init__(self, width: int, lookback_bits: int):
        super().__init__(width)
        if lookback_bits < 1:
            raise ValueError(f"lookback_bits must be >= 1, got {lookback_bits}")
        self.lookback_bits = int(lookback_bits)
        if self.lookback_bits < self.width - 1:
            # Carry into bit i is speculated from [i - lookback, i).
            self._carry_masks = bitops.windowed_carry_masks(
                [max(0, i - self.lookback_bits) for i in range(self.width)]
            )

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.lookback_bits >= self.width - 1:
            return self.exact_sum(a, b)
        # Bit-parallel: all windowed carries at once, O(lookback) vector
        # ops per batch (see bitops.windowed_carry_add; the bit-serial
        # formulation lives in repro.hardware.adders.reference).
        return bitops.windowed_carry_add(a, b, self.width, self._carry_masks)

    def cell_inventory(self) -> Counter:
        if self.lookback_bits >= self.width - 1:
            return Counter({"fa": self.width})
        # Each result bit owns a window of lookback_bits carry cells; the
        # heavy overlap is what makes ACA fast but area-hungry.  Real
        # implementations share the prefix logic between windows, so the
        # overlap is charged at the shared-speculation cell cost.
        spec = sum(min(self.lookback_bits, i) for i in range(self.width))
        return Counter({"fa": self.width, "spec_shared": spec})

    def critical_path_cells(self) -> int:
        """One look-back window plus the result bit."""
        if self.lookback_bits >= self.width - 1:
            return self.width
        return min(self.width, self.lookback_bits + 1)

    @property
    def is_exact(self) -> bool:
        return self.lookback_bits >= self.width - 1

    def describe(self) -> str:
        return f"AcaAdder(width={self.width}, lookback_bits={self.lookback_bits})"
