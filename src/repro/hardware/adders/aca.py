"""Almost Correct Adder (ACA).

Verma et al.'s design: each result bit ``i`` is computed with a carry
speculated from only the previous ``lookback_bits`` bit positions rather
than the full carry chain.  Equivalent to a sliding-window adder; the
probability that a real carry chain exceeds the window shrinks
geometrically with the window size.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class AcaAdder(AdderModel):
    """ACA with a configurable carry look-back window.

    Args:
        width: total word width in bits.
        lookback_bits: how many previous bit positions participate in the
            speculated carry for each result bit.  ``lookback_bits >=
            width - 1`` degenerates to an exact adder.
    """

    family = "aca"

    def __init__(self, width: int, lookback_bits: int):
        super().__init__(width)
        if lookback_bits < 1:
            raise ValueError(f"lookback_bits must be >= 1, got {lookback_bits}")
        self.lookback_bits = int(lookback_bits)

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if self.lookback_bits >= self.width - 1:
            return self.exact_sum(a, b)

        k = self.lookback_bits
        result = np.zeros_like(a)
        for i in range(self.width):
            lo = max(0, i - k)
            window = i - lo  # number of look-back bits actually available
            # Carry into bit i from the windowed sub-addition.
            wa = bitops.extract_field(a, lo, window)
            wb = bitops.extract_field(b, lo, window)
            carry = (wa + wb) >> np.int64(window) if window else np.zeros_like(a)
            s = bitops.get_bit(a, i) + bitops.get_bit(b, i) + carry
            result |= (s & np.int64(1)) << np.int64(i)
        return result

    def cell_inventory(self) -> Counter:
        if self.lookback_bits >= self.width - 1:
            return Counter({"fa": self.width})
        # Each result bit owns a window of lookback_bits carry cells; the
        # heavy overlap is what makes ACA fast but area-hungry.  Real
        # implementations share the prefix logic between windows, so the
        # overlap is charged at the shared-speculation cell cost.
        spec = sum(min(self.lookback_bits, i) for i in range(self.width))
        return Counter({"fa": self.width, "spec_shared": spec})

    def critical_path_cells(self) -> int:
        """One look-back window plus the result bit."""
        if self.lookback_bits >= self.width - 1:
            return self.width
        return min(self.width, self.lookback_bits + 1)

    @property
    def is_exact(self) -> bool:
        return self.lookback_bits >= self.width - 1

    def describe(self) -> str:
        return f"AcaAdder(width={self.width}, lookback_bits={self.lookback_bits})"
