"""Generic Accuracy-configurable adder (GeAr).

Shafique et al.'s generalization of ACA/ETA-style designs: the word is
covered by overlapping sub-adders, each producing ``result_bits`` result
bits while consuming ``previous_bits`` extra low-order bits purely for
carry speculation.  ``GeAr(R, P)`` spans the families:

* ``P = 0`` → disjoint segments with no speculation (ETA-like with
  zero-carry guesses),
* larger ``P`` → longer speculation windows and lower error rates,
* ``R + P >= width`` → exact.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class GearAdder(AdderModel):
    """GeAr(R, P) adder.

    Args:
        width: total word width in bits.
        result_bits: ``R``, result bits produced per sub-adder (>= 1).
        previous_bits: ``P``, speculative look-back bits per sub-adder
            (>= 0).
    """

    family = "gear"

    def __init__(self, width: int, result_bits: int, previous_bits: int):
        super().__init__(width)
        if result_bits < 1:
            raise ValueError(f"result_bits must be >= 1, got {result_bits}")
        if previous_bits < 0:
            raise ValueError(f"previous_bits must be >= 0, got {previous_bits}")
        self.result_bits = int(result_bits)
        self.previous_bits = int(previous_bits)
        self._groups: list[tuple[int, int]] | None = None
        self._carry_masks: tuple[int, ...] | None = None
        if self.result_bits + self.previous_bits < self.width:
            groups = self._group_plan()
            depth = max(1, self.result_bits + self.previous_bits - 1)
            # Two equivalent bit-parallel evaluations exist; pick the one
            # with fewer vector ops (~7 per SWAR group pass vs ~5 per
            # carry-window depth level).
            if 7 * len(groups) <= 5 * depth:
                self._groups = groups
            else:
                self._carry_masks = bitops.windowed_carry_masks(self._window_lo())

    def _window_lo(self) -> list[int]:
        """Carry-window start per result bit.

        Bits of the first sub-adder are exact (window from 0); every
        later sub-adder speculates the carry for its ``R`` result bits
        from ``P`` positions below its result region.
        """
        window_lo = [0] * self.width
        for result_lo, lo in self._subadders()[1:]:
            for i in range(result_lo, min(result_lo + self.result_bits, self.width)):
                window_lo[i] = lo
        return window_lo

    def _group_plan(self) -> list[tuple[int, int]]:
        """``(top_mask, keep_mask)`` per group of disjoint sub-adders.

        Adjacent sub-adder windows overlap by only ``P`` bits, so windows
        spaced a full span apart are disjoint.  Greedily packing the
        windows into groups of pairwise-disjoint intervals lets each
        group be evaluated as ONE segmented local-sum pass
        (:func:`repro.hardware.bitops.segment_local_sums`): the group's
        windows plus the gaps between them tile the word, carries cannot
        cross segment boundaries, and each sub-adder's result bits are
        selected with ``keep_mask``.
        """
        r, p = self.result_bits, self.previous_bits
        width = self.width
        wins = []  # (window_lo, window_hi, keep_lo, keep_hi)
        for idx, (result_lo, window_lo) in enumerate(self._subadders()):
            if idx == 0:
                hi = min(r + p, width)
                wins.append((0, hi, 0, hi))
            else:
                hi = min(result_lo + r, width)
                wins.append((window_lo, hi, result_lo, hi))
        groups: list[list[tuple[int, int, int, int]]] = []
        for win in wins:  # LSB-first, so first-fit keeps groups sorted
            for grp in groups:
                if grp[-1][1] <= win[0]:
                    grp.append(win)
                    break
            else:
                groups.append([win])
        plan = []
        for grp in groups:
            spans = []
            pos = 0
            for lo, hi, _, _ in grp:
                if lo > pos:
                    spans.append((pos, lo - pos))  # inter-window gap
                spans.append((lo, hi - lo))
                pos = hi
            if pos < width:
                spans.append((pos, width - pos))
            top = bitops.segment_top_mask(width, spans)
            keep = 0
            for _, _, klo, khi in grp:
                keep |= ((1 << (khi - klo)) - 1) << klo
            plan.append((top, keep))
        return plan

    def _subadders(self) -> list[tuple[int, int]]:
        """``(result_lo, window_lo)`` for each sub-adder, LSB first.

        The first sub-adder produces bits ``[0, R + P)`` exactly (it has
        no predecessor to speculate from); subsequent sub-adders each
        produce ``R`` bits starting where the previous one stopped.
        """
        spans = []
        r, p = self.result_bits, self.previous_bits
        result_lo = 0
        first_span = min(r + p, self.width)
        spans.append((0, 0))
        result_lo = first_span
        while result_lo < self.width:
            window_lo = max(0, result_lo - p)
            spans.append((result_lo, window_lo))
            result_lo += r
        return spans

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.result_bits + self.previous_bits >= self.width:
            return self.exact_sum(a, b)
        # Every sub-adder is a truncated-carry window, so the whole GeAr
        # evaluates bit-parallel either as grouped segmented local sums
        # or as one windowed-carry addition — __init__ picked the cheaper
        # layout (the sub-adder-serial formulation lives in
        # repro.hardware.adders.reference).
        if self._groups is not None:
            result = None
            for top, keep in self._groups:
                part = bitops.segment_local_sums(a, b, self.width, top)
                part = part & np.int64(keep)
                result = part if result is None else result | part
            return result
        return bitops.windowed_carry_add(a, b, self.width, self._carry_masks)

    def cell_inventory(self) -> Counter:
        if self.result_bits + self.previous_bits >= self.width:
            return Counter({"fa": self.width})
        total_window = 0
        r, p = self.result_bits, self.previous_bits
        for idx, (result_lo, window_lo) in enumerate(self._subadders()):
            if idx == 0:
                total_window += min(r + p, self.width)
            else:
                total_window += min(result_lo + r, self.width) - window_lo
        # Every windowed bit costs a full adder; overlap beyond `width`
        # is the speculation overhead.
        overhead = max(0, total_window - self.width)
        return Counter({"fa": self.width, "spec_half": overhead})

    def critical_path_cells(self) -> int:
        """One sub-adder's window: R result + P speculation bits."""
        if self.result_bits + self.previous_bits >= self.width:
            return self.width
        return min(self.width, self.result_bits + self.previous_bits)

    @property
    def is_exact(self) -> bool:
        return self.result_bits + self.previous_bits >= self.width

    def describe(self) -> str:
        return (
            f"GearAdder(width={self.width}, result_bits={self.result_bits}, "
            f"previous_bits={self.previous_bits})"
        )
