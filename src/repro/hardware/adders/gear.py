"""Generic Accuracy-configurable adder (GeAr).

Shafique et al.'s generalization of ACA/ETA-style designs: the word is
covered by overlapping sub-adders, each producing ``result_bits`` result
bits while consuming ``previous_bits`` extra low-order bits purely for
carry speculation.  ``GeAr(R, P)`` spans the families:

* ``P = 0`` → disjoint segments with no speculation (ETA-like with
  zero-carry guesses),
* larger ``P`` → longer speculation windows and lower error rates,
* ``R + P >= width`` → exact.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class GearAdder(AdderModel):
    """GeAr(R, P) adder.

    Args:
        width: total word width in bits.
        result_bits: ``R``, result bits produced per sub-adder (>= 1).
        previous_bits: ``P``, speculative look-back bits per sub-adder
            (>= 0).
    """

    family = "gear"

    def __init__(self, width: int, result_bits: int, previous_bits: int):
        super().__init__(width)
        if result_bits < 1:
            raise ValueError(f"result_bits must be >= 1, got {result_bits}")
        if previous_bits < 0:
            raise ValueError(f"previous_bits must be >= 0, got {previous_bits}")
        self.result_bits = int(result_bits)
        self.previous_bits = int(previous_bits)

    def _subadders(self) -> list[tuple[int, int]]:
        """``(result_lo, window_lo)`` for each sub-adder, LSB first.

        The first sub-adder produces bits ``[0, R + P)`` exactly (it has
        no predecessor to speculate from); subsequent sub-adders each
        produce ``R`` bits starting where the previous one stopped.
        """
        spans = []
        r, p = self.result_bits, self.previous_bits
        result_lo = 0
        first_span = min(r + p, self.width)
        spans.append((0, 0))
        result_lo = first_span
        while result_lo < self.width:
            window_lo = max(0, result_lo - p)
            spans.append((result_lo, window_lo))
            result_lo += r
        return spans

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if self.result_bits + self.previous_bits >= self.width:
            return self.exact_sum(a, b)

        r, p = self.result_bits, self.previous_bits
        result = np.zeros_like(a)
        spans = self._subadders()
        for idx, (result_lo, window_lo) in enumerate(spans):
            if idx == 0:
                length = min(r + p, self.width)
                produced_lo, produced_len = 0, length
            else:
                length = min(result_lo + r, self.width) - window_lo
                produced_lo, produced_len = result_lo, min(r, self.width - result_lo)
            wa = bitops.extract_field(a, window_lo, length)
            wb = bitops.extract_field(b, window_lo, length)
            s = wa + wb
            keep_shift = np.int64(produced_lo - window_lo)
            keep_mask = np.int64((1 << produced_len) - 1)
            result |= ((s >> keep_shift) & keep_mask) << np.int64(produced_lo)
        return result

    def cell_inventory(self) -> Counter:
        if self.result_bits + self.previous_bits >= self.width:
            return Counter({"fa": self.width})
        total_window = 0
        r, p = self.result_bits, self.previous_bits
        for idx, (result_lo, window_lo) in enumerate(self._subadders()):
            if idx == 0:
                total_window += min(r + p, self.width)
            else:
                total_window += min(result_lo + r, self.width) - window_lo
        # Every windowed bit costs a full adder; overlap beyond `width`
        # is the speculation overhead.
        overhead = max(0, total_window - self.width)
        return Counter({"fa": self.width, "spec_half": overhead})

    def critical_path_cells(self) -> int:
        """One sub-adder's window: R result + P speculation bits."""
        if self.result_bits + self.previous_bits >= self.width:
            return self.width
        return min(self.width, self.result_bits + self.previous_bits)

    @property
    def is_exact(self) -> bool:
        return self.result_bits + self.previous_bits >= self.width

    def describe(self) -> str:
        return (
            f"GearAdder(width={self.width}, result_bits={self.result_bits}, "
            f"previous_bits={self.previous_bits})"
        )
