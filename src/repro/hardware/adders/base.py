"""Abstract base class for bit-accurate adder models.

An :class:`AdderModel` adds two's-complement words of a fixed ``width``.
Subclasses implement the *unsigned* addition (two's-complement signed
addition is the same operation modulo ``2**width``) and report a
structural :meth:`cell_inventory` from which
:class:`~repro.hardware.energy.EnergyModel` derives an energy per
operation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro.hardware import bitops


class AdderModel(ABC):
    """A ``width``-bit two's-complement adder, possibly approximate.

    The model is deliberately *functional*: it has no internal state, so a
    single instance can be shared between engines and threads.

    Attributes:
        width: word width in bits.
    """

    #: Short family identifier used in reports (overridden by subclasses).
    family: str = "abstract"

    def __init__(self, width: int):
        self.width = bitops.check_width(width)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @abstractmethod
    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Add unsigned words, returning a word masked to ``width`` bits.

        Args:
            a, b: ``int64`` arrays with values in ``[0, 2**width)``.

        Returns:
            ``int64`` array of the (approximate) sums, masked to ``width``
            bits — i.e. carry-out is discarded exactly as a fixed-width
            datapath would.
        """

    def add_signed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Add two's-complement signed words with wraparound overflow."""
        ua = bitops.to_unsigned(a, self.width)
        ub = bitops.to_unsigned(b, self.width)
        return bitops.to_signed(self.add_unsigned(ua, ub), self.width)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.add_signed(a, b)

    # ------------------------------------------------------------------
    # Structure / energy
    # ------------------------------------------------------------------
    @abstractmethod
    def cell_inventory(self) -> Counter:
        """Structural cell counts, e.g. ``Counter({'fa': 24, 'or2': 8})``.

        Keys must be cell names known to
        :class:`~repro.hardware.energy.EnergyModel`.
        """

    def critical_path_cells(self) -> int:
        """Length of the longest carry chain, in full-adder cells.

        Approximate adders shorten the carry chain, which is what lets
        a voltage-scaled deployment trade the slack for energy (the
        accuracy-configurable designs the paper builds on are pitched
        exactly this way).  The default is the full ripple chain;
        subclasses with broken chains override.
        """
        return self.width

    @property
    def is_exact(self) -> bool:
        """Whether this model never deviates from the true sum."""
        return False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{type(self).__name__}(width={self.width})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def exact_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Golden unsigned sum (masked), for error characterization."""
        mask = np.int64(bitops.word_mask(self.width))
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return (a + b) & mask

    def error_distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Absolute deviation from the golden sum, elementwise."""
        return np.abs(self.add_unsigned(a, b) - self.exact_sum(a, b))
