"""Golden (fully accurate) adder model."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class ExactAdder(AdderModel):
    """A conventional ripple-carry adder: functionally perfect.

    This is the ``accurate`` mode of the paper's quality-configurable
    system and the reference against which every approximate model's
    error and energy are normalized.
    """

    family = "exact"

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = np.int64(bitops.word_mask(self.width))
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return (a + b) & mask

    def cell_inventory(self) -> Counter:
        """One full adder per bit position."""
        return Counter({"fa": self.width})

    @property
    def is_exact(self) -> bool:
        return True
