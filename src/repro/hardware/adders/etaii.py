"""Error-Tolerant Adder type II (ETA-II).

Zhu et al.'s segmented carry-speculation design: the word is split into
segments of ``segment_bits``; each segment's sum is computed exactly, but
the carry *into* a segment is speculated from the previous segment alone
(the exact carry-out of that segment assuming a zero carry-in), breaking
the global carry chain.  Errors occur only when a carry would have
propagated across more than one segment boundary, which is rare for
uniformly random operands — hence a low error rate but a potentially
large error distance.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel


class EtaIIAdder(AdderModel):
    """ETA-II with configurable speculation segment size.

    Args:
        width: total word width in bits.
        segment_bits: size of each speculation segment.  The final
            (most-significant) segment may be shorter when ``width`` is
            not a multiple of ``segment_bits``.  ``segment_bits >= width``
            degenerates to an exact adder.
    """

    family = "etaii"

    def __init__(self, width: int, segment_bits: int):
        super().__init__(width)
        if segment_bits < 1:
            raise ValueError(f"segment_bits must be >= 1, got {segment_bits}")
        self.segment_bits = int(segment_bits)
        if self.segment_bits < self.width:
            self._top_mask = bitops.segment_top_mask(self.width, self._segments())

    def _segments(self) -> list[tuple[int, int]]:
        """``(lo, length)`` of each segment, LSB segment first."""
        spans = []
        lo = 0
        while lo < self.width:
            spans.append((lo, min(self.segment_bits, self.width - lo)))
            lo += self.segment_bits
        return spans

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.segment_bits >= self.width:
            return self.exact_sum(a, b)
        # All segments at once via the SWAR kernel: constant vector-op
        # count regardless of segment count (the segment-serial
        # formulation lives in repro.hardware.adders.reference).
        return bitops.segmented_speculative_add(a, b, self.width, self._top_mask)

    def cell_inventory(self) -> Counter:
        if self.segment_bits >= self.width:
            return Counter({"fa": self.width})
        spans = self._segments()
        # Each segment needs its own adder plus a duplicated carry
        # generator (modelled as half the cost of a full adder chain).
        fa = sum(length for _, length in spans)
        spec = sum(length for _, length in spans[:-1])
        return Counter({"fa": fa, "spec_half": spec})

    def critical_path_cells(self) -> int:
        """Speculated carry + segment sum: two segments' worth."""
        if self.segment_bits >= self.width:
            return self.width
        return min(self.width, 2 * self.segment_bits)

    @property
    def is_exact(self) -> bool:
        return self.segment_bits >= self.width

    def describe(self) -> str:
        return f"EtaIIAdder(width={self.width}, segment_bits={self.segment_bits})"
