"""Truncation adder.

The cheapest approximation: the low-order ``approx_bits`` of the result
are not computed at all.  Two fill policies are supported:

* ``"zero"`` — low bits forced to 0 (pure truncation, negatively biased),
* ``"one"`` — low bits forced to 1 (halves the expected bias; the common
  hardware choice because an all-ones constant costs nothing).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel

_FILL_POLICIES = ("zero", "one")


class TruncatedAdder(AdderModel):
    """Adder that skips the low-order bits entirely.

    Args:
        width: total word width in bits.
        approx_bits: number of low-order bits left uncomputed
            (``0 <= approx_bits < width``).
        fill: ``"zero"`` or ``"one"`` — the constant driven onto the
            uncomputed result bits.
    """

    family = "truncated"

    def __init__(self, width: int, approx_bits: int, fill: str = "one"):
        super().__init__(width)
        if not 0 <= approx_bits < width:
            raise ValueError(
                f"approx_bits must be in [0, width), got {approx_bits} for width {width}"
            )
        if fill not in _FILL_POLICIES:
            raise ValueError(f"fill must be one of {_FILL_POLICIES}, got {fill!r}")
        self.approx_bits = int(approx_bits)
        self.fill = fill

    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        k = self.approx_bits
        if k == 0:
            return self.exact_sum(a, b)
        word = np.int64(bitops.word_mask(self.width))
        upper = (a >> np.int64(k)) + (b >> np.int64(k))
        low = np.int64((1 << k) - 1) if self.fill == "one" else np.int64(0)
        return ((upper << np.int64(k)) | low) & word

    def cell_inventory(self) -> Counter:
        return Counter({"fa": self.width - self.approx_bits})

    def critical_path_cells(self) -> int:
        """Only the computed upper part carries."""
        return self.width - self.approx_bits

    @property
    def is_exact(self) -> bool:
        return self.approx_bits == 0

    def describe(self) -> str:
        return (
            f"TruncatedAdder(width={self.width}, approx_bits={self.approx_bits}, "
            f"fill={self.fill!r})"
        )
