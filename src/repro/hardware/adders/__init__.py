"""Approximate adder model zoo.

Each model is a subclass of :class:`~repro.hardware.adders.base.AdderModel`
implementing ``add_unsigned`` (vectorized over numpy ``int64`` words) and a
structural cell inventory from which the energy model derives a cost per
operation.  :func:`build_adder` is the string-keyed factory used by the
mode registry and by configuration files.
"""

from __future__ import annotations

from typing import Any

from repro.hardware.adders.aca import AcaAdder
from repro.hardware.adders.base import AdderModel
from repro.hardware.adders.etaii import EtaIIAdder
from repro.hardware.adders.exact import ExactAdder
from repro.hardware.adders.faulty import FaultyAdder
from repro.hardware.adders.gear import GearAdder
from repro.hardware.adders.loa import LowerOrAdder
from repro.hardware.adders.reconfigurable import ReconfigurableAdder
from repro.hardware.adders.truncated import TruncatedAdder

#: Registry of adder families addressable by name.
ADDER_FAMILIES: dict[str, type[AdderModel]] = {
    "exact": ExactAdder,
    "loa": LowerOrAdder,
    "etaii": EtaIIAdder,
    "aca": AcaAdder,
    "gear": GearAdder,
    "truncated": TruncatedAdder,
}


def build_adder(family: str, width: int, **params: Any) -> AdderModel:
    """Instantiate an adder model by family name.

    Args:
        family: one of ``exact``, ``loa``, ``etaii``, ``aca``, ``gear``,
            ``truncated``.
        width: word width in bits (two's complement).
        **params: family-specific parameters, e.g. ``approx_bits`` for
            ``loa``/``truncated``, ``segment_bits`` for ``etaii``,
            ``lookback_bits`` for ``aca``, ``result_bits``/``previous_bits``
            for ``gear``.

    Returns:
        A configured :class:`AdderModel`.

    Raises:
        KeyError: if ``family`` is unknown.
    """
    try:
        cls = ADDER_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(ADDER_FAMILIES))
        raise KeyError(f"unknown adder family {family!r}; known: {known}") from None
    return cls(width=width, **params)


__all__ = [
    "ADDER_FAMILIES",
    "AcaAdder",
    "AdderModel",
    "EtaIIAdder",
    "ExactAdder",
    "FaultyAdder",
    "GearAdder",
    "LowerOrAdder",
    "ReconfigurableAdder",
    "TruncatedAdder",
    "build_adder",
]
