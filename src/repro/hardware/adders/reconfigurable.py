"""Runtime-reconfigurable quality-configurable adder.

The paper's platform is built from the reconfiguration-oriented adders
of Ye et al. (ICCAD 2013): *one* physical device whose accuracy level is
switched by a small configuration register, not five separate adders.
:class:`ReconfigurableAdder` models that device: it wraps an ordered
ladder of behavioural adder models, exposes ``select(level)`` and counts
level switches so the (small but nonzero) reconfiguration energy can be
charged — letting the reproduction *measure* the paper's claim that
reconfiguration overhead "can be safely ignored".

The device is intentionally the only stateful component in
:mod:`repro.hardware`; everything else stays purely functional.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.hardware.adders.base import AdderModel

#: Energy units charged per level switch: reloading a handful of
#: configuration latches, a few gate-equivalents.
DEFAULT_SWITCH_ENERGY = 2.0


class ReconfigurableAdder(AdderModel):
    """One adder, many accuracy levels, switched at runtime.

    Args:
        levels: behavioural models ordered least accurate first; all
            must share one width and the last must be exact (so the
            device can always be driven to full accuracy).
        switch_energy: energy units charged per reconfiguration.

    The instance behaves as whatever level is currently selected;
    :attr:`switches` and :attr:`switch_energy_spent` expose the
    reconfiguration overhead.
    """

    family = "reconfigurable"

    def __init__(
        self,
        levels: Sequence[AdderModel],
        switch_energy: float = DEFAULT_SWITCH_ENERGY,
    ):
        if not levels:
            raise ValueError("a reconfigurable adder needs at least one level")
        widths = {adder.width for adder in levels}
        if len(widths) != 1:
            raise ValueError(f"all levels must share one width, got {widths}")
        if not levels[-1].is_exact:
            raise ValueError("the highest level must be exact")
        if switch_energy < 0:
            raise ValueError(f"switch_energy must be >= 0, got {switch_energy}")
        super().__init__(levels[0].width)
        self.levels = tuple(levels)
        self.switch_energy = float(switch_energy)
        self._current = 0
        self.switches = 0
        self.switch_energy_spent = 0.0

    # ------------------------------------------------------------------
    # Configuration interface
    # ------------------------------------------------------------------
    @property
    def current_level(self) -> int:
        """Index of the active level (0 = least accurate)."""
        return self._current

    @property
    def active(self) -> AdderModel:
        """The behavioural model currently selected."""
        return self.levels[self._current]

    def select(self, level: int) -> None:
        """Switch the device to ``level``, charging the overhead.

        Selecting the already-active level is free (no latch toggles).

        Raises:
            IndexError: if ``level`` is out of range.
        """
        if not 0 <= level < len(self.levels):
            raise IndexError(
                f"level {level} out of range [0, {len(self.levels) - 1}]"
            )
        if level != self._current:
            self._current = level
            self.switches += 1
            self.switch_energy_spent += self.switch_energy

    def reset_counters(self) -> None:
        """Zero the reconfiguration statistics (keeps the level)."""
        self.switches = 0
        self.switch_energy_spent = 0.0

    # ------------------------------------------------------------------
    # AdderModel interface (delegates to the active level)
    # ------------------------------------------------------------------
    def add_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.active.add_unsigned(a, b)

    def cell_inventory(self) -> Counter:
        """The active level's cells plus the configuration muxes.

        A reconfigurable datapath pays a mux per result bit to steer
        between the exact and approximate sub-circuits.
        """
        cells = Counter(self.active.cell_inventory())
        cells["mux2"] += self.width
        return cells

    def critical_path_cells(self) -> int:
        return self.active.critical_path_cells()

    @property
    def is_exact(self) -> bool:
        return self.active.is_exact

    def describe(self) -> str:
        return (
            f"ReconfigurableAdder(width={self.width}, "
            f"levels={len(self.levels)}, current={self._current}, "
            f"switches={self.switches})"
        )
