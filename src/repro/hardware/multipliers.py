"""Multiplier models built on top of the adder zoo.

The paper's datapath approximates *adders* (Table 2's "Adder Impact"
column), but a complete hardware substrate needs multipliers too: the
array multiplier here composes any :class:`AdderModel` to accumulate its
partial products, so approximate addition propagates into multiplication
exactly as it would in silicon.  The exact multiplier provides the golden
reference and the energy baseline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro.hardware import bitops
from repro.hardware.adders.base import AdderModel
from repro.hardware.adders.exact import ExactAdder


class MultiplierModel(ABC):
    """A ``width x width -> width``-bit two's-complement multiplier.

    The product is truncated to the low ``width`` bits (wraparound), the
    standard fixed-width datapath convention.
    """

    family: str = "abstract"

    def __init__(self, width: int):
        self.width = bitops.check_width(width)

    @abstractmethod
    def multiply_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply unsigned words, masked to ``width`` bits."""

    def multiply_signed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Two's-complement multiply with wraparound overflow."""
        ua = bitops.to_unsigned(a, self.width)
        ub = bitops.to_unsigned(b, self.width)
        return bitops.to_signed(self.multiply_unsigned(ua, ub), self.width)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.multiply_signed(a, b)

    @abstractmethod
    def cell_inventory(self) -> Counter:
        """Structural cells, for the energy model."""


class ExactMultiplier(MultiplierModel):
    """Golden multiplier (low ``width`` bits of the full product)."""

    family = "exact_mul"

    def multiply_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = np.int64(bitops.word_mask(self.width))
        a = np.asarray(a, dtype=np.int64) & mask
        b = np.asarray(b, dtype=np.int64) & mask
        # Keep only the low `width` bits; compute in python ints when the
        # doubled width would overflow int64.
        if 2 * self.width <= 62:
            return (a * b) & mask
        obj = (a.astype(object) * b.astype(object)) & int(mask)
        return np.asarray(obj, dtype=np.int64)

    def cell_inventory(self) -> Counter:
        # Array multiplier: width^2 AND gates for partial products and
        # ~width*(width-1) full adders to reduce them.
        return Counter({"and2": self.width**2, "fa": self.width * (self.width - 1)})


class ApproxArrayMultiplier(MultiplierModel):
    """Shift-and-add array multiplier accumulating through a given adder.

    Each of the ``width`` partial products is accumulated with
    ``adder.add_unsigned``, so an approximate adder's error model applies
    at every reduction step — the standard way approximate adders are
    composed into larger approximate datapaths.

    Args:
        adder: the accumulation adder; its width must match.
    """

    family = "approx_array_mul"

    def __init__(self, adder: AdderModel):
        super().__init__(adder.width)
        self.adder = adder

    def multiply_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = np.int64(bitops.word_mask(self.width))
        a = np.asarray(a, dtype=np.int64) & mask
        b = np.asarray(b, dtype=np.int64) & mask
        acc = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for bit in range(self.width):
            take = (b >> np.int64(bit)) & np.int64(1)
            partial = ((a << np.int64(bit)) & mask) * take
            acc = self.adder.add_unsigned(acc, partial)
        return acc & mask

    def cell_inventory(self) -> Counter:
        cells = Counter({"and2": self.width**2})
        per_add = self.adder.cell_inventory()
        for cell, count in per_add.items():
            cells[cell] += count * (self.width - 1)
        return cells

    def describe(self) -> str:
        return f"ApproxArrayMultiplier({self.adder.describe()})"


class TruncatedMultiplier(MultiplierModel):
    """Fixed-width truncated array multiplier.

    The classic area/energy saver: partial-product bits in the
    ``trunc_columns`` least-significant columns are never generated, and
    an optional constant compensation (``2**(trunc_columns-1)``) centres
    the resulting negative bias — the standard truncation-with-
    correction scheme of the truncated-multiplier literature.

    Args:
        width: word width.
        trunc_columns: number of low product columns dropped
            (``0 <= trunc_columns < width``).
        compensate: add the constant bias correction.
    """

    family = "truncated_mul"

    def __init__(self, width: int, trunc_columns: int, compensate: bool = True):
        super().__init__(width)
        if not 0 <= trunc_columns < width:
            raise ValueError(
                f"trunc_columns must be in [0, width), got {trunc_columns}"
            )
        self.trunc_columns = int(trunc_columns)
        self.compensate = bool(compensate)

    def multiply_unsigned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = np.int64(bitops.word_mask(self.width))
        a = np.asarray(a, dtype=np.int64) & mask
        b = np.asarray(b, dtype=np.int64) & mask
        k = self.trunc_columns
        exact = ExactMultiplier(self.width).multiply_unsigned(a, b)
        if k == 0:
            return exact
        # Subtract the partial-product bits that were never generated:
        # partial j contributes bits of (a << j); its bits below column
        # k are (a & ((1 << (k - j)) - 1)) << j.
        dropped = np.zeros_like(exact)
        for j in range(min(k, self.width)):
            take = (b >> np.int64(j)) & np.int64(1)
            low_mask = np.int64((1 << (k - j)) - 1)
            dropped = dropped + ((a & low_mask) << np.int64(j)) * take
        out = exact - (dropped & mask)
        if self.compensate:
            out = out + np.int64(1 << (k - 1))
        return out & mask

    def cell_inventory(self) -> Counter:
        k = self.trunc_columns
        # Dropped cells: the triangle of k columns of AND gates and the
        # adders reducing them.
        total_and = self.width**2
        dropped_and = k * (k + 1) // 2
        total_fa = self.width * (self.width - 1)
        dropped_fa = max(0, (k - 1) * k // 2)
        return Counter(
            {"and2": total_and - dropped_and, "fa": total_fa - dropped_fa}
        )

    def describe(self) -> str:
        return (
            f"TruncatedMultiplier(width={self.width}, "
            f"trunc_columns={self.trunc_columns}, compensate={self.compensate})"
        )


def exact_reference(width: int) -> ApproxArrayMultiplier:
    """Array multiplier built from an exact adder (structural golden)."""
    return ApproxArrayMultiplier(ExactAdder(width))
