"""Low-level error-metric characterization of approximate components.

Section 3.1 of the paper surveys the standard metrics used to grade
approximate hardware — worst-case error (WCE), error rate (ER) and mean
error (ME) — and argues they cannot be used directly at the application
level.  This module computes those metrics (plus the mean error distance
MED and the mean relative error distance MRED common in the literature)
for any :class:`~repro.hardware.adders.base.AdderModel`, either
exhaustively (small widths) or by Monte-Carlo sampling (wide words).

These profiles feed two consumers:

* the offline stage of ApproxIt, which needs a per-mode error magnitude
  ``epsilon_i`` (see :mod:`repro.core.characterize` for the
  application-level alternative the paper prefers), and
* the hardware regression tests, which pin the qualitative ordering
  "higher level → smaller errors".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.adders.base import AdderModel

#: Above this width the exhaustive 4**width input space is intractable.
_EXHAUSTIVE_LIMIT = 8


@dataclass(frozen=True)
class AdderErrorProfile:
    """Summary statistics of an adder's deviation from the golden sum.

    Attributes:
        error_rate: fraction of input pairs with any deviation (ER).
        mean_error: signed mean deviation (ME); captures bias.
        mean_error_distance: mean absolute deviation (MED).
        mean_relative_error_distance: mean of ``|err| / max(1, |true|)``
            (MRED).
        worst_case_error: maximum absolute deviation observed (WCE).
        samples: number of input pairs evaluated.
        exhaustive: whether the whole input space was covered.
    """

    error_rate: float
    mean_error: float
    mean_error_distance: float
    mean_relative_error_distance: float
    worst_case_error: int
    samples: int
    exhaustive: bool

    def as_dict(self) -> dict[str, float]:
        """Flat dict view, convenient for table rendering."""
        return {
            "ER": self.error_rate,
            "ME": self.mean_error,
            "MED": self.mean_error_distance,
            "MRED": self.mean_relative_error_distance,
            "WCE": float(self.worst_case_error),
        }


def _profile_from_pairs(
    adder: AdderModel, a: np.ndarray, b: np.ndarray, exhaustive: bool
) -> AdderErrorProfile:
    approx = adder.add_unsigned(a, b)
    golden = adder.exact_sum(a, b)
    err = (approx - golden).astype(np.float64)
    abs_err = np.abs(err)
    denom = np.maximum(1.0, np.abs(golden.astype(np.float64)))
    return AdderErrorProfile(
        error_rate=float(np.mean(abs_err > 0)),
        mean_error=float(np.mean(err)),
        mean_error_distance=float(np.mean(abs_err)),
        mean_relative_error_distance=float(np.mean(abs_err / denom)),
        worst_case_error=int(abs_err.max(initial=0.0)),
        samples=int(a.size),
        exhaustive=exhaustive,
    )


def characterize_adder(
    adder: AdderModel,
    samples: int = 100_000,
    seed: int = 0,
    exhaustive: bool | None = None,
    overflow_free: bool = True,
) -> AdderErrorProfile:
    """Measure an adder's error metrics over its unsigned input space.

    Args:
        adder: the model to characterize.
        samples: Monte-Carlo sample count when not exhaustive.
        seed: RNG seed for reproducible sampling.
        exhaustive: force exhaustive enumeration (``True``), force
            sampling (``False``), or decide by width (``None``, the
            default: exhaustive iff ``width <= 8``).
        overflow_free: restrict inputs so the exact sum fits ``width``
            bits (the literature's convention).  Without it, pairs whose
            exact sum wraps but whose approximate sum does not produce
            error distances near ``2**width`` that say nothing about the
            adder itself.

    Returns:
        An :class:`AdderErrorProfile`.
    """
    if exhaustive is None:
        exhaustive = adder.width <= _EXHAUSTIVE_LIMIT
    if exhaustive:
        if adder.width > 2 * _EXHAUSTIVE_LIMIT:
            raise ValueError(
                f"refusing exhaustive characterization at width {adder.width}"
            )
        space = np.arange(1 << adder.width, dtype=np.int64)
        a, b = np.meshgrid(space, space, indexing="ij")
        a, b = a.ravel(), b.ravel()
        if overflow_free:
            keep = (a + b) < (1 << adder.width)
            a, b = a[keep], b[keep]
        return _profile_from_pairs(adder, a, b, exhaustive=True)

    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    # Drawing both operands below 2**(width-1) guarantees the exact sum
    # never wraps; otherwise use the full input space.
    hi = 1 << (adder.width - 1 if overflow_free else adder.width)
    a = rng.integers(0, hi, size=samples, dtype=np.int64)
    b = rng.integers(0, hi, size=samples, dtype=np.int64)
    return _profile_from_pairs(adder, a, b, exhaustive=False)


def compare_levels(adders: list[AdderModel], **kwargs) -> list[AdderErrorProfile]:
    """Characterize a list of adders with identical sampling settings."""
    return [characterize_adder(adder, **kwargs) for adder in adders]


def bit_error_profile(
    adder: AdderModel,
    samples: int = 50_000,
    seed: int = 0,
    overflow_free: bool = True,
) -> np.ndarray:
    """Per-bit flip probability of an adder's output.

    For each output bit position, the fraction of sampled input pairs
    whose approximate sum differs from the golden sum at that bit —
    the spatial signature of an approximation scheme (lower-part adders
    concentrate flips in the approximate region; speculation adders
    flip at segment boundaries).

    Args:
        adder: the model to profile.
        samples: Monte-Carlo sample count.
        seed: RNG seed.
        overflow_free: restrict operands so exact sums never wrap.

    Returns:
        Array of length ``adder.width``: flip rate of each bit,
        LSB first.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    hi = 1 << (adder.width - 1 if overflow_free else adder.width)
    a = rng.integers(0, hi, size=samples, dtype=np.int64)
    b = rng.integers(0, hi, size=samples, dtype=np.int64)
    diff = adder.add_unsigned(a, b) ^ adder.exact_sum(a, b)
    rates = np.empty(adder.width)
    for bit in range(adder.width):
        rates[bit] = float(((diff >> np.int64(bit)) & np.int64(1)).mean())
    return rates
