"""Static timing and voltage-scaling model for the adder library.

The energy model's voltage-scaling factor
(:class:`~repro.hardware.energy.EnergyModel`) rests on a timing
argument: approximate adders shorten the carry chain, the shorter
critical path leaves slack at the nominal clock, and a
voltage-frequency-scaled deployment converts that slack into a lower
supply voltage at iso-frequency.  This module makes the argument
quantitative:

* :func:`critical_path_delay` — gate-delay units through the longest
  carry chain (one full-adder cell ≈ 2 gate delays, standard for a
  mirror adder's carry path);
* :func:`max_frequency` — the clock the adder sustains at nominal
  voltage;
* :class:`VoltageScaler` — an alpha-power-law delay model
  ``delay ∝ V / (V - Vt)^alpha`` inverted to find the minimum supply
  voltage that still meets a target period, and the resulting
  energy-per-op factor ``(V/Vnom)²``.

The default parameters are generic 45-nm-class values; only ratios
matter downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.adders.base import AdderModel

#: Gate delays through one full-adder carry stage.
GATE_DELAYS_PER_CELL = 2.0


def critical_path_delay(adder: AdderModel) -> float:
    """Delay of the adder's longest carry chain, in gate-delay units."""
    return GATE_DELAYS_PER_CELL * adder.critical_path_cells()


def max_frequency(adder: AdderModel, gate_delay_ps: float = 15.0) -> float:
    """Highest clock (GHz) the adder meets at nominal voltage.

    Args:
        adder: the model under analysis.
        gate_delay_ps: nominal per-gate delay in picoseconds.
    """
    if gate_delay_ps <= 0:
        raise ValueError(f"gate_delay_ps must be > 0, got {gate_delay_ps}")
    period_ps = critical_path_delay(adder) * gate_delay_ps
    return 1000.0 / period_ps  # ps -> GHz


@dataclass(frozen=True)
class VoltageScaler:
    """Alpha-power-law DVS model.

    ``delay(V) = k * V / (V - Vt)^alpha`` — the standard Sakurai–Newton
    model.  :meth:`voltage_for_slack` finds the smallest supply (within
    ``[v_min, v_nominal]``) whose delay inflation stays inside the slack
    earned by a shortened critical path, and :meth:`energy_factor`
    converts it to the ``(V/Vnom)²`` dynamic-energy ratio.

    Attributes:
        v_nominal: nominal supply voltage.
        v_threshold: device threshold voltage.
        alpha: velocity-saturation exponent (1.3 is typical for
            short-channel CMOS).
        v_min: lowest safe operating voltage.
    """

    v_nominal: float = 1.0
    v_threshold: float = 0.3
    alpha: float = 1.3
    v_min: float = 0.5

    def __post_init__(self):
        if not 0 < self.v_threshold < self.v_min < self.v_nominal:
            raise ValueError(
                "require 0 < v_threshold < v_min < v_nominal, got "
                f"Vt={self.v_threshold}, Vmin={self.v_min}, Vdd={self.v_nominal}"
            )
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    def relative_delay(self, voltage: float) -> float:
        """Delay at ``voltage`` relative to the delay at nominal."""
        if voltage <= self.v_threshold:
            raise ValueError(
                f"voltage {voltage} must exceed threshold {self.v_threshold}"
            )

        def raw(v: float) -> float:
            return v / (v - self.v_threshold) ** self.alpha

        return raw(voltage) / raw(self.v_nominal)

    def voltage_for_slack(self, path_ratio: float) -> float:
        """Minimum supply meeting the nominal clock with a shortened path.

        Args:
            path_ratio: ``critical_path(approx) / critical_path(exact)``
                in (0, 1]; the shortened path may run ``1/path_ratio``
                times slower per gate and still meet timing.

        Returns:
            The scaled supply voltage (bisection; clamped to
            ``[v_min, v_nominal]``).
        """
        if not 0 < path_ratio <= 1:
            raise ValueError(f"path_ratio must be in (0, 1], got {path_ratio}")
        budget = 1.0 / path_ratio  # tolerable per-gate delay inflation
        lo, hi = self.v_min, self.v_nominal
        if self.relative_delay(lo) <= budget:
            return lo
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.relative_delay(mid) <= budget:
                hi = mid
            else:
                lo = mid
        return hi

    def energy_factor(self, path_ratio: float) -> float:
        """Dynamic-energy ratio ``(V/Vnom)²`` earned by the slack."""
        v = self.voltage_for_slack(path_ratio)
        return (v / self.v_nominal) ** 2

    def adder_energy_factor(self, adder: AdderModel) -> float:
        """Energy factor for a concrete adder vs. a full-chain design."""
        ratio = adder.critical_path_cells() / adder.width
        return self.energy_factor(ratio)
