"""Energy model for the arithmetic cell library.

The paper charges energy with the CMOS model of Weste & Harris [22] on
gate-level netlists and reports *normalized* numbers (exact adder = 1).
We reproduce that with a switched-capacitance-style proxy: every
structural cell of a model costs a fixed number of energy units per
operation, and a model's energy per op is the sum over its
:meth:`~repro.hardware.adders.base.AdderModel.cell_inventory`.

The default per-cell costs are expressed relative to a full-adder cell
(``fa`` = 1.0).  They track transistor counts of standard static CMOS
implementations: a mirror full adder is 28T, a 2-input OR is 6T, a
2-input AND is 6T, and the duplicated speculation logic of ETA/ACA/GeAr
style adders is charged at roughly half a full adder per speculated bit
(carry generation only, no sum).

On top of the switched-capacitance term, the model applies a
**voltage-scaling factor**: approximate adders shorten the carry chain,
and the accuracy-configurable designs the paper's platform is built on
(Ye et al., Kahng & Kang) spend that timing slack on a lower supply
voltage at iso-frequency.  With energy ``∝ C V²`` and the operating
voltage scaled (linearized) with the critical-path ratio, each
operation's energy is additionally multiplied by
``(critical_path / full_path) ** voltage_exponent``; the default
exponent 1.0 is a deliberately conservative middle ground between "no
voltage scaling" (0) and the ideal quadratic (2).

The absolute values matter less than two properties the evaluation
relies on:

1. energy is monotone in accuracy within a configurable family
   (more approximate bits → cheaper), and
2. the exact adder is the most expensive mode.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.hardware.adders.base import AdderModel

#: Relative energy per cell per operation (full adder = 1).
DEFAULT_CELL_COSTS: dict[str, float] = {
    "fa": 1.0,  # full adder (sum + carry)
    "ha": 0.6,  # half adder
    "or2": 6.0 / 28.0,  # 2-input OR, transistor-count scaled
    "and2": 6.0 / 28.0,  # 2-input AND
    "xor2": 8.0 / 28.0,  # 2-input XOR
    "spec_half": 0.5,  # duplicated carry-speculation cell
    "spec_shared": 0.15,  # shared-prefix speculation (ACA-style trees)
    "mux2": 12.0 / 28.0,  # 2:1 mux (configurable designs)
}


@dataclass(frozen=True)
class EnergyModel:
    """Maps structural cell inventories to energy per operation.

    Attributes:
        cell_costs: energy units per cell activation; unknown cells raise.
        activity_factor: global scale applied to every cost; the paper's
            numbers are normalized so this only matters if absolute
            joules are desired.
        voltage_exponent: exponent of the critical-path ratio applied as
            a voltage-scaling energy factor (0 disables voltage scaling,
            2 is the ideal ``V²`` limit; default 1.0).
    """

    cell_costs: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_CELL_COSTS))
    activity_factor: float = 1.0
    voltage_exponent: float = 1.0

    def cost_of_cells(self, inventory: Counter) -> float:
        """Energy of one activation of every cell in ``inventory``."""
        total = 0.0
        for cell, count in inventory.items():
            if count < 0:
                raise ValueError(f"negative cell count for {cell!r}: {count}")
            try:
                total += self.cell_costs[cell] * count
            except KeyError:
                known = ", ".join(sorted(self.cell_costs))
                raise KeyError(f"unknown cell {cell!r}; known cells: {known}") from None
        return total * self.activity_factor

    def energy_per_add(self, adder: AdderModel) -> float:
        """Energy units consumed by one addition on ``adder``.

        The switched-capacitance cost of the cell inventory times the
        voltage-scaling factor earned by the shortened carry chain.
        """
        cost = self.cost_of_cells(adder.cell_inventory())
        if self.voltage_exponent:
            ratio = adder.critical_path_cells() / adder.width
            cost *= ratio**self.voltage_exponent
        return cost

    def relative_energy(self, adder: AdderModel, reference: AdderModel) -> float:
        """Energy of ``adder`` normalized to ``reference`` (usually exact).

        Raises:
            ZeroDivisionError: if the reference adder has zero cost.
        """
        ref = self.energy_per_add(reference)
        if ref == 0.0:
            raise ZeroDivisionError("reference adder has zero energy cost")
        return self.energy_per_add(adder) / ref
