"""Bit-accurate software models of approximate arithmetic hardware.

The paper evaluates ApproxIt on a quality-configurable system built from
four approximate adders of increasing accuracy (``level1`` .. ``level4``)
plus a fully accurate mode, following the reconfiguration-oriented adder
designs of Ye et al. (ICCAD 2013).  Those gate-level netlists are not
public, so this package implements the canonical approximate-adder
families those levels stand in for:

=====================  ====================================================
Model                  Approximation idea
=====================  ====================================================
:class:`ExactAdder`    golden ripple-carry behaviour (no approximation)
:class:`LowerOrAdder`  LOA — OR the low-order bits, add the rest exactly
:class:`EtaIIAdder`    ETA-II — segmented carry speculation
:class:`AcaAdder`      ACA — per-bit carry from a bounded look-back window
:class:`GearAdder`     GeAr — generic sub-adders with R result / P
                       previous bits
:class:`TruncatedAdder` drop the low-order bits entirely
=====================  ====================================================

All adders operate on two's-complement integers of a configurable bit
width, vectorized over numpy ``int64`` arrays, and expose an energy cost
per operation derived from the cell counts of their structural
description (:mod:`repro.hardware.energy`).

:mod:`repro.hardware.characterization` computes the classic low-level
error metrics (worst-case error, error rate, mean error, mean error
distance, mean relative error distance) that Section 3.1 of the paper
contrasts with its application-level *quality error*.
"""

from repro.hardware.adders import (
    AcaAdder,
    AdderModel,
    EtaIIAdder,
    ExactAdder,
    GearAdder,
    LowerOrAdder,
    TruncatedAdder,
    build_adder,
)
from repro.hardware.characterization import AdderErrorProfile, characterize_adder
from repro.hardware.energy import EnergyModel
from repro.hardware.multipliers import (
    ApproxArrayMultiplier,
    ExactMultiplier,
    TruncatedMultiplier,
)

__all__ = [
    "AcaAdder",
    "AdderModel",
    "AdderErrorProfile",
    "ApproxArrayMultiplier",
    "EnergyModel",
    "EtaIIAdder",
    "ExactAdder",
    "ExactMultiplier",
    "GearAdder",
    "LowerOrAdder",
    "TruncatedAdder",
    "TruncatedMultiplier",
    "build_adder",
    "characterize_adder",
]
