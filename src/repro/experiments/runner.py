"""Shared experiment execution for the table/figure regenerators.

One :class:`ApplicationResult` per (application, dataset) bundles the
Truth run, the four single-mode runs (Table 3(a)/4(a)) and the two
online-reconfiguration runs (Table 3(b)/4(b)), with QEM and normalized
energy computed against the Truth — the exact quantities the paper's
tables print.  Results are memoized per process so that e.g. Figure 4
reuses Table 3's runs instead of recomputing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.apps.autoregression import AutoRegression
from repro.apps.gmm import GaussianMixtureEM
from repro.apps.qem import cluster_assignment_hamming, weight_l2_error
from repro.core.framework import ApproxIt, RunResult
from repro.data.registry import DATASETS, load_dataset

#: Single-mode configurations of the first experiment, ladder order.
SINGLE_MODES = ("level1", "level2", "level3", "level4")
#: Online strategies of the second experiment.
ONLINE_STRATEGIES = ("incremental", "adaptive")

#: Keys of the GMM datasets, Table 3 row order.
GMM_DATASETS = ("3cluster", "3d3cluster", "4cluster")
#: Keys of the AR datasets, Table 4 row order.
AR_DATASETS = ("hangseng", "nasdaq", "sp500")


@dataclass
class ApplicationResult:
    """All runs of one application on one dataset.

    Attributes:
        dataset_key: registry key.
        display_name: the paper's dataset name.
        truth: fully accurate reference run.
        single_mode: mode name → run (the Table a experiments).
        online: strategy name → run (the Table b experiments).
        qem: run label (mode or strategy name) → quality vs Truth.
        framework: the ApproxIt instance (exposes method and bank for
            downstream figures).
    """

    dataset_key: str
    display_name: str
    truth: RunResult
    single_mode: dict[str, RunResult]
    online: dict[str, RunResult]
    qem: dict[str, float]
    framework: ApproxIt

    def energy_of(self, label: str) -> float:
        """Normalized energy (Truth = 1) of a single-mode or online run."""
        run = self.run_of(label)
        return run.energy_relative_to(self.truth)

    def run_of(self, label: str) -> RunResult:
        """Look up a run by mode name, strategy name, or ``"truth"``."""
        if label == "truth":
            return self.truth
        if label in self.single_mode:
            return self.single_mode[label]
        if label in self.online:
            return self.online[label]
        known = ["truth", *self.single_mode, *self.online]
        raise KeyError(f"unknown run label {label!r}; known: {known}")

    def savings_of(self, label: str) -> float:
        """Energy saving vs Truth in percent (positive = cheaper)."""
        return (1.0 - self.energy_of(label)) * 100.0


def _run_all(framework: ApproxIt, qem_fn) -> tuple[RunResult, dict, dict, dict]:
    truth = framework.run_truth()
    single = {}
    online = {}
    qem = {"truth": 0.0}
    for mode in SINGLE_MODES:
        run = framework.run(strategy=f"static:{mode}")
        single[mode] = run
        qem[mode] = qem_fn(run, truth)
    for strategy in ONLINE_STRATEGIES:
        run = framework.run(strategy=strategy)
        online[strategy] = run
        qem[strategy] = qem_fn(run, truth)
    return truth, single, online, qem


@lru_cache(maxsize=None)
def run_gmm_experiment(dataset_key: str) -> ApplicationResult:
    """Run the full GMM experiment matrix on one Table-2 dataset."""
    spec = DATASETS[dataset_key]
    if spec.application != "gmm":
        raise ValueError(f"{dataset_key!r} is not a GMM dataset")
    dataset = load_dataset(dataset_key)
    method = GaussianMixtureEM.from_dataset(dataset)
    framework = ApproxIt(method)

    def qem_fn(run: RunResult, truth: RunResult) -> float:
        return float(
            cluster_assignment_hamming(
                method.assignments(run.x),
                method.assignments(truth.x),
                method.n_clusters,
            )
        )

    truth, single, online, qem = _run_all(framework, qem_fn)
    return ApplicationResult(
        dataset_key=dataset_key,
        display_name=spec.display_name,
        truth=truth,
        single_mode=single,
        online=online,
        qem=qem,
        framework=framework,
    )


@lru_cache(maxsize=None)
def run_ar_experiment(dataset_key: str) -> ApplicationResult:
    """Run the full AutoRegression experiment matrix on one dataset."""
    spec = DATASETS[dataset_key]
    if spec.application != "autoregression":
        raise ValueError(f"{dataset_key!r} is not an AR dataset")
    dataset = load_dataset(dataset_key)
    method = AutoRegression.from_dataset(dataset)
    framework = ApproxIt(method)

    def qem_fn(run: RunResult, truth: RunResult) -> float:
        return weight_l2_error(run.x, truth.x)

    truth, single, online, qem = _run_all(framework, qem_fn)
    return ApplicationResult(
        dataset_key=dataset_key,
        display_name=spec.display_name,
        truth=truth,
        single_mode=single,
        online=online,
        qem=qem,
        framework=framework,
    )


def run_experiment(dataset_key: str) -> ApplicationResult:
    """Dispatch on the dataset's registered application."""
    spec = DATASETS[dataset_key]
    if spec.application == "gmm":
        return run_gmm_experiment(dataset_key)
    return run_ar_experiment(dataset_key)


def iteration_cell(run: RunResult) -> str:
    """The paper's iteration cell: the count, or ``MAX_ITER``."""
    return "MAX_ITER" if run.hit_max_iter else str(run.iterations)


def steps_row(run: RunResult, bank_names: list[str]) -> list[int]:
    """Per-mode accepted step counts in ladder order."""
    return [run.steps_by_mode.get(name, 0) for name in bank_names]
