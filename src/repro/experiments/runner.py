"""Shared experiment execution for the table/figure regenerators.

One :class:`ApplicationResult` per (application, dataset) bundles the
Truth run, the four single-mode runs (Table 3(a)/4(a)) and the two
online-reconfiguration runs (Table 3(b)/4(b)), with QEM and normalized
energy computed against the Truth — the exact quantities the paper's
tables print.  Results are memoized per process so that e.g. Figure 4
reuses Table 3's runs instead of recomputing them.

The experiment matrix is embarrassingly parallel: every ``(dataset,
run-label)`` sweep cell is an independent, deterministic computation.
:func:`run_experiment_cells` / :func:`run_experiments_parallel` fan the
cells out over a process pool (:mod:`repro.experiments.parallel`) and
seed the per-process memo caches with the assembled results, so the
serial table/figure code downstream reuses them transparently.
"""

from __future__ import annotations

import functools
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.apps.autoregression import AutoRegression
from repro.apps.gmm import GaussianMixtureEM
from repro.apps.qem import cluster_assignment_hamming, weight_l2_error
from repro.core.characterize import CharacterizationCache
from repro.core.framework import ApproxIt, RunResult
from repro.data.registry import DATASETS, load_dataset
from repro.experiments.parallel import SweepPool, process_map
from repro.obs import TraceRecorder

#: Single-mode configurations of the first experiment, ladder order.
SINGLE_MODES = ("level1", "level2", "level3", "level4")
#: Online strategies of the second experiment.
ONLINE_STRATEGIES = ("incremental", "adaptive")

#: Keys of the GMM datasets, Table 3 row order.
GMM_DATASETS = ("3cluster", "3d3cluster", "4cluster")
#: Keys of the AR datasets, Table 4 row order.
AR_DATASETS = ("hangseng", "nasdaq", "sp500")

#: Every run of one experiment cell's matrix, in serial execution order.
CELL_LABELS = ("truth", *SINGLE_MODES, *ONLINE_STRATEGIES)


def _memoized(fn):
    """Per-process memo keyed on the single positional argument.

    Like ``functools.lru_cache(maxsize=None)`` but with a seedable cache
    so parallel runs can deposit precomputed results:

    * ``fn.cache_clear()`` — drop everything (test isolation);
    * ``fn.cache_seed(key, value)`` — install a result as if ``fn(key)``
      had been called.
    """
    cache: dict = {}

    @functools.wraps(fn)
    def wrapper(key):
        if key not in cache:
            cache[key] = fn(key)
        return cache[key]

    def cache_seed(key, value):
        cache[key] = value

    wrapper.cache_clear = cache.clear
    wrapper.cache_seed = cache_seed
    return wrapper


@dataclass
class ApplicationResult:
    """All runs of one application on one dataset.

    Attributes:
        dataset_key: registry key.
        display_name: the paper's dataset name.
        truth: fully accurate reference run.
        single_mode: mode name → run (the Table a experiments).
        online: strategy name → run (the Table b experiments).
        qem: run label (mode or strategy name) → quality vs Truth.
        framework: the ApproxIt instance (exposes method and bank for
            downstream figures).
    """

    dataset_key: str
    display_name: str
    truth: RunResult
    single_mode: dict[str, RunResult]
    online: dict[str, RunResult]
    qem: dict[str, float]
    framework: ApproxIt

    def energy_of(self, label: str) -> float:
        """Normalized energy (Truth = 1) of a single-mode or online run."""
        run = self.run_of(label)
        return run.energy_relative_to(self.truth)

    def run_of(self, label: str) -> RunResult:
        """Look up a run by mode name, strategy name, or ``"truth"``."""
        if label == "truth":
            return self.truth
        if label in self.single_mode:
            return self.single_mode[label]
        if label in self.online:
            return self.online[label]
        known = ["truth", *self.single_mode, *self.online]
        raise KeyError(f"unknown run label {label!r}; known: {known}")

    def savings_of(self, label: str) -> float:
        """Energy saving vs Truth in percent (positive = cheaper)."""
        return (1.0 - self.energy_of(label)) * 100.0


#: Process-wide default characterization cache directory, set once by
#: the CLI so *every* framework this module builds — serial table
#: renderers included — shares one disk cache.  ``None`` = no cache.
_default_cache_dir: str | None = None


def set_default_cache_dir(cache_dir: str | Path | None) -> None:
    """Install (or clear, with ``None``) the process-wide cache dir."""
    global _default_cache_dir
    _default_cache_dir = None if cache_dir is None else str(cache_dir)


def build_framework(
    dataset_key: str,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> tuple[ApproxIt, object]:
    """Construct the framework (and its method) for one dataset.

    ``cache_dir`` (explicit, or the process-wide default installed via
    :func:`set_default_cache_dir`) attaches a disk-backed
    characterization cache to the framework.  This is the one
    registry-dataset → framework constructor; the sweep workers, the
    CLI artifacts and the service executor all build through it, so a
    service job and a CLI run of the same request are the same
    computation.
    """
    if cache_dir is None:
        cache_dir = _default_cache_dir
    spec = DATASETS[dataset_key]
    dataset = load_dataset(dataset_key)
    if spec.application == "gmm":
        method = GaussianMixtureEM.from_dataset(dataset)
    else:
        method = AutoRegression.from_dataset(dataset)
    char_cache = CharacterizationCache(cache_dir) if cache_dir else None
    return ApproxIt(method, char_cache=char_cache, backend=backend), method


#: Backward-compatible alias (pre-service name).
_build_framework = build_framework


def _qem_fn(dataset_key: str, method):
    """The dataset's quality-error metric against a Truth run."""
    if DATASETS[dataset_key].application == "gmm":

        def qem_fn(run: RunResult, truth: RunResult) -> float:
            return float(
                cluster_assignment_hamming(
                    method.assignments(run.x),
                    method.assignments(truth.x),
                    method.n_clusters,
                )
            )

        return qem_fn

    def qem_fn(run: RunResult, truth: RunResult) -> float:
        return weight_l2_error(run.x, truth.x)

    return qem_fn


def _run_cell(
    framework: ApproxIt,
    label: str,
    trace_dir: str | None = None,
    dataset_key: str = "",
) -> RunResult:
    """Execute one sweep cell (a single run) on a framework.

    With ``trace_dir`` set the run is observed by a
    :class:`~repro.obs.TraceRecorder` and exported to
    ``<trace_dir>/<dataset>_<label>.jsonl`` (``<label>.jsonl`` without a
    dataset key); the written path lands in ``RunResult.trace_path``.
    Tracing is passive — the run itself is bit-identical either way.
    """
    observer = None
    if trace_dir is not None:
        tag = f"{dataset_key}:{label}" if dataset_key else label
        observer = TraceRecorder(label=tag)
    if label == "truth":
        run = framework.run_truth(observer=observer)
    elif label in SINGLE_MODES:
        run = framework.run(strategy=f"static:{label}", observer=observer)
    elif label in ONLINE_STRATEGIES:
        run = framework.run(strategy=label, observer=observer)
    else:
        raise KeyError(f"unknown cell label {label!r}; known: {CELL_LABELS}")
    if observer is not None:
        stem = f"{dataset_key}_{label}" if dataset_key else label
        path = Path(trace_dir) / f"{stem}.jsonl"
        observer.save(
            path,
            meta={
                "dataset": dataset_key,
                "run_label": label,
                "strategy": run.strategy_name,
            },
        )
        run.trace_path = str(path)
    return run


def _label_spec(label: str) -> str:
    """The ``run``/``run_batch`` strategy spec of one cell label."""
    if label == "truth":
        return "truth"
    if label in SINGLE_MODES:
        return f"static:{label}"
    if label in ONLINE_STRATEGIES:
        return label
    raise KeyError(f"unknown cell label {label!r}; known: {CELL_LABELS}")


def _run_shard(
    framework: ApproxIt,
    labels: tuple[str, ...],
    trace_dir: str | None = None,
    dataset_key: str = "",
) -> list[RunResult]:
    """Execute one batched shard: one ``run_batch`` lane per cell label.

    All lanes share the dataset's method, number format and adder bank,
    so they are compatible by construction, and per-lane results are
    bit-identical to the solo :func:`_run_cell` path (the parity
    guarantee of :meth:`~repro.core.framework.ApproxIt.run_batch`).
    With ``trace_dir`` set the whole shard records into one lane-tagged
    trace file, ``<dataset>_batch_<first>_<last>.jsonl``, every lane's
    ``trace_path`` points at it, and single-lane views come back via
    ``summarize_trace(path, lane=i)``.
    """
    specs = [_label_spec(label) for label in labels]
    observer = None
    if trace_dir is not None:
        tag = f"{dataset_key}:batch" if dataset_key else "batch"
        observer = TraceRecorder(label=tag)
    runs = framework.run_batch(specs, observer=observer)
    if observer is not None:
        stem = f"batch_{labels[0]}_{labels[-1]}"
        if dataset_key:
            stem = f"{dataset_key}_{stem}"
        path = Path(trace_dir) / f"{stem}.jsonl"
        observer.save(
            path,
            meta={
                "dataset": dataset_key,
                "run_labels": list(labels),
                "lanes": len(labels),
            },
        )
        for run in runs:
            run.trace_path = str(path)
    return runs


def _shard_worker(
    shard: tuple[str, tuple[str, ...], str | None, str | None],
) -> tuple[list[tuple[str, str, RunResult]], str | None]:
    """Process-pool entry point: run one ``(dataset, labels, trace_dir,
    cache_dir)`` shard of compatible cells.

    The framework is rebuilt in-worker exactly as :func:`_cell_worker`
    does.  Shards whose method refuses the batched path (see
    :func:`repro.solvers.batched.batching_support`) fall back to the
    solo per-cell loop, so routing through shards never changes
    results — only the execution schedule.  The second return element
    is the structured refusal notice (``None`` when the shard batched
    or was single-lane), surfaced by the parent on stderr.
    """
    dataset_key, labels, trace_dir, cache_dir = shard
    framework, _ = _build_framework(dataset_key, cache_dir=cache_dir)
    support = framework.batching_support()
    fallback = None
    if len(labels) > 1 and support:
        runs = _run_shard(framework, labels, trace_dir, dataset_key)
    else:
        if len(labels) > 1 and not support:
            fallback = f"[{support.reason.value}] {support.message}"
        runs = [
            _run_cell(framework, label, trace_dir, dataset_key)
            for label in labels
        ]
    rows = [(dataset_key, label, run) for label, run in zip(labels, runs)]
    return rows, fallback


def _shard_cells(
    dataset_keys,
    batch_size: int,
    trace_dir: str | None,
    cache_dir: str | None,
) -> list[tuple[str, tuple[str, ...], str | None, str | None]]:
    """Split every dataset's cell labels into shards of ``<= batch_size``
    lanes.  Shards never cross datasets — lanes of one ``run_batch``
    must share a method, format and adder bank."""
    return [
        (key, CELL_LABELS[start : start + batch_size], trace_dir, cache_dir)
        for key in dataset_keys
        for start in range(0, len(CELL_LABELS), batch_size)
    ]


def _cell_worker(
    cell: tuple[str, str, str | None, str | None],
) -> tuple[str, str, RunResult]:
    """Process-pool entry point: run one ``(dataset, label, trace_dir,
    cache_dir)`` cell.

    Every worker rebuilds the framework from the dataset registry —
    methods are deterministic (fresh, seeded RNGs per call), so a cell
    run in a fresh process is bit-identical to the same cell run
    serially on a shared framework.  Each traced cell writes its own
    per-process recorder to its own file, so tracing stays safe under
    ``--parallel``; the paths come back merged into the results at
    join.  The cache dir rides in the cell tuple because workers are
    fresh processes: the parent's process-wide default does not reach
    them, and the disk cache (atomic writes, content-addressed) is the
    one store they can all share.
    """
    dataset_key, label, trace_dir, cache_dir = cell
    framework, _ = _build_framework(dataset_key, cache_dir=cache_dir)
    return dataset_key, label, _run_cell(framework, label, trace_dir, dataset_key)


def _assemble(dataset_key: str, runs: dict[str, RunResult]) -> ApplicationResult:
    """Bundle one dataset's cell runs into an :class:`ApplicationResult`."""
    spec = DATASETS[dataset_key]
    framework, method = _build_framework(dataset_key)
    qem_fn = _qem_fn(dataset_key, method)
    truth = runs["truth"]
    qem = {"truth": 0.0}
    for label in (*SINGLE_MODES, *ONLINE_STRATEGIES):
        qem[label] = qem_fn(runs[label], truth)
    return ApplicationResult(
        dataset_key=dataset_key,
        display_name=spec.display_name,
        truth=truth,
        single_mode={m: runs[m] for m in SINGLE_MODES},
        online={s: runs[s] for s in ONLINE_STRATEGIES},
        qem=qem,
        framework=framework,
    )


def _run_matrix(dataset_key: str) -> ApplicationResult:
    """Serial execution of one dataset's full experiment matrix."""
    framework, _ = _build_framework(dataset_key)
    runs = {label: _run_cell(framework, label) for label in CELL_LABELS}
    return _assemble(dataset_key, runs)


@_memoized
def run_gmm_experiment(dataset_key: str) -> ApplicationResult:
    """Run the full GMM experiment matrix on one Table-2 dataset."""
    if DATASETS[dataset_key].application != "gmm":
        raise ValueError(f"{dataset_key!r} is not a GMM dataset")
    return _run_matrix(dataset_key)


@_memoized
def run_ar_experiment(dataset_key: str) -> ApplicationResult:
    """Run the full AutoRegression experiment matrix on one dataset."""
    if DATASETS[dataset_key].application != "autoregression":
        raise ValueError(f"{dataset_key!r} is not an AR dataset")
    return _run_matrix(dataset_key)


def run_experiment(dataset_key: str) -> ApplicationResult:
    """Dispatch on the dataset's registered application."""
    spec = DATASETS[dataset_key]
    if spec.application == "gmm":
        return run_gmm_experiment(dataset_key)
    return run_ar_experiment(dataset_key)


def _seed_cache(dataset_key: str, result: ApplicationResult) -> None:
    if DATASETS[dataset_key].application == "gmm":
        run_gmm_experiment.cache_seed(dataset_key, result)
    else:
        run_ar_experiment.cache_seed(dataset_key, result)


def _prepare_trace_dir(trace_dir: str | Path | None) -> str | None:
    """Normalize and create the trace directory (picklable str or None)."""
    if trace_dir is None:
        return None
    path = Path(trace_dir)
    path.mkdir(parents=True, exist_ok=True)
    return str(path)


def _normalize_cache_dir(cache_dir: str | Path | None) -> str | None:
    """Explicit cache dir, or the process-wide default (picklable)."""
    if cache_dir is None:
        return _default_cache_dir
    return str(cache_dir)


def _map_cells(cells, max_workers, pool: SweepPool | None, fn=_cell_worker):
    """Fan the cells out over the supplied persistent pool, or a
    one-shot :func:`process_map` when the caller holds none."""
    if pool is not None:
        return pool.map(fn, cells)
    return process_map(fn, cells, max_workers=max_workers)


def _collect_shard_rows(
    results,
) -> tuple[list[tuple[str, str, RunResult]], dict[str, list[str]]]:
    """Flatten shard results into rows, aggregating refusal notices.

    Every *distinct* refusal notice of a dataset's shards is kept, in
    first-seen order — different shards of one dataset can refuse for
    different reasons (e.g. after a mid-sweep registry change, or when
    shards route through differently-configured workers), and dropping
    all but the first would hide the extra causes from the operator.
    Duplicate notices (the common case: every shard refuses identically)
    collapse to one.
    """
    rows: list[tuple[str, str, RunResult]] = []
    fallbacks: dict[str, list[str]] = {}
    for group, fallback in results:
        rows.extend(group)
        if fallback is not None:
            notices = fallbacks.setdefault(group[0][0], [])
            if fallback not in notices:
                notices.append(fallback)
    return rows, fallbacks


def _map_rows(
    dataset_keys,
    max_workers,
    trace_dir: str | None,
    cache_dir: str | None,
    pool: SweepPool | None,
    batch_size: int | None,
) -> list[tuple[str, str, RunResult]]:
    """All ``(dataset, label, run)`` rows of the requested datasets.

    ``batch_size > 1`` routes each dataset's cells through batched
    shards (:func:`_shard_worker`); otherwise one solo cell per task.
    Shards that refused to batch surface every distinct structured
    refusal per dataset on stderr
    (``batch fallback: <dataset>: [<reason>] …``).
    """
    if batch_size and int(batch_size) > 1:
        shards = _shard_cells(dataset_keys, int(batch_size), trace_dir, cache_dir)
        results = _map_cells(shards, max_workers, pool, fn=_shard_worker)
        rows, fallbacks = _collect_shard_rows(results)
        for key in sorted(fallbacks):
            for notice in fallbacks[key]:
                sys.stderr.write(f"batch fallback: {key}: {notice}\n")
        return rows
    cells = [
        (key, label, trace_dir, cache_dir)
        for key in dataset_keys
        for label in CELL_LABELS
    ]
    return _map_cells(cells, max_workers, pool)


def run_experiment_cells(
    dataset_key: str,
    max_workers: int | None = None,
    trace_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    pool: SweepPool | None = None,
    batch_size: int | None = None,
) -> ApplicationResult:
    """One dataset's experiment matrix, sweep cells fanned out.

    Equivalent to :func:`run_experiment` — cell runs are deterministic —
    but the seven runs (truth, four static modes, two online strategies)
    execute concurrently across processes.  The assembled result is
    seeded into the memo cache for downstream reuse.  With ``trace_dir``
    every cell exports its JSONL trace there (one file per cell, written
    by the worker that ran it).  ``cache_dir`` attaches the disk-backed
    characterization cache in every worker (and in the serial
    fallback); ``pool`` reuses a caller-held :class:`SweepPool` instead
    of spinning one up per call.  ``batch_size > 1`` groups the cells
    into lane-parallel shards of at most that many lanes, each advanced
    lock-step by :meth:`~repro.core.framework.ApproxIt.run_batch` —
    results are bit-identical to solo cells (methods that refuse the
    batched path fall back to solo execution inside the shard, with the
    structured refusal reported on stderr), and traced shards export
    one lane-tagged ``<dataset>_batch_*.jsonl`` per shard instead of
    per-cell files.
    """
    trace_dir = _prepare_trace_dir(trace_dir)
    cache_dir = _normalize_cache_dir(cache_dir)
    rows = _map_rows(
        (dataset_key,), max_workers, trace_dir, cache_dir, pool, batch_size
    )
    result = _assemble(dataset_key, {label: run for _, label, run in rows})
    _seed_cache(dataset_key, result)
    return result


def run_experiments_parallel(
    dataset_keys: tuple[str, ...] | None = None,
    max_workers: int | None = None,
    trace_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    pool: SweepPool | None = None,
    batch_size: int | None = None,
) -> dict[str, ApplicationResult]:
    """Fan the whole (dataset × run-label) sweep out over a process pool.

    Args:
        dataset_keys: datasets to run; all six paper datasets when
            ``None``.
        max_workers: pool size (``None`` = all cores; ``<= 1`` = serial).
        trace_dir: when set, every cell run is traced and exported to
            ``<trace_dir>/<dataset>_<label>.jsonl``; per-cell files are
            written by per-process recorders, so this is safe under the
            pool, and each ``RunResult.trace_path`` points at its file.
        cache_dir: characterization-cache directory for every cell
            (workers included); ``None`` takes the process-wide default
            installed via :func:`set_default_cache_dir`.
        pool: a caller-held persistent :class:`SweepPool` to submit to;
            ``None`` creates a one-shot pool for this call.
        batch_size: lanes per batched shard.  ``> 1`` groups each
            dataset's compatible cells (same method, number format and
            adder bank) into shards of at most this many lanes and
            advances each shard lock-step through
            :meth:`~repro.core.framework.ApproxIt.run_batch`; each pool
            worker executes one whole shard.  Per-lane results are
            bit-identical to solo cells; methods that refuse the
            batched path fall back to solo execution inside their
            shard, with the structured refusal reported once per
            dataset on stderr.  Traced shards export one lane-tagged
            ``<dataset>_batch_*.jsonl`` per shard (filter per lane with
            ``summarize_trace(path, lane=i)``).  ``None``/``0``/``1``
            keeps the one-cell-per-task solo path.

    Returns:
        ``dataset_key -> ApplicationResult`` for every requested key,
        with the per-process memo caches seeded so that the serial
        table/figure generators reuse these runs.
    """
    if dataset_keys is None:
        dataset_keys = (*GMM_DATASETS, *AR_DATASETS)
    trace_dir = _prepare_trace_dir(trace_dir)
    cache_dir = _normalize_cache_dir(cache_dir)
    rows = _map_rows(
        dataset_keys, max_workers, trace_dir, cache_dir, pool, batch_size
    )
    by_key: dict[str, dict[str, RunResult]] = {}
    for key, label, run in rows:
        by_key.setdefault(key, {})[label] = run
    results = {}
    for key in dataset_keys:
        result = _assemble(key, by_key[key])
        _seed_cache(key, result)
        results[key] = result
    return results


def iteration_cell(run: RunResult) -> str:
    """The paper's iteration cell: the count, or ``MAX_ITER``."""
    return "MAX_ITER" if run.hit_max_iter else str(run.iterations)


def steps_row(run: RunResult, bank_names: list[str]) -> list[int]:
    """Per-mode accepted step counts in ladder order."""
    return [run.steps_by_mode.get(name, 0) for name in bank_names]
