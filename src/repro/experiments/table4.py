"""Table 4: results on AutoRegression.

Same structure as Table 3, with the QEM being the l2 least-square error
of the fitted coefficients against the Truth fit, and the paper's
"Power" column being the normalized approximate-part energy.
"""

from __future__ import annotations

from repro.experiments.render import format_number, format_table
from repro.experiments.runner import (
    AR_DATASETS,
    ONLINE_STRATEGIES,
    SINGLE_MODES,
    iteration_cell,
    run_ar_experiment,
    steps_row,
)


def table4a(dataset_keys: tuple[str, ...] = AR_DATASETS) -> str:
    """Render Table 4(a): AR single-mode results."""
    headers = ["Configuration"]
    for key in dataset_keys:
        name = run_ar_experiment(key).display_name
        headers += [f"{name} Iter", f"{name} QEM", f"{name} Power"]

    rows = []
    for label in list(SINGLE_MODES) + ["truth"]:
        row = ["Truth" if label == "truth" else label]
        for key in dataset_keys:
            result = run_ar_experiment(key)
            run = result.run_of(label)
            row += [
                iteration_cell(run),
                format_number(result.qem[label]),
                format_number(result.energy_of(label)),
            ]
        rows.append(row)
    return format_table(headers, rows, title="Table 4(a): AR Single Mode Results")


def table4b(dataset_keys: tuple[str, ...] = AR_DATASETS) -> str:
    """Render Table 4(b): AR online reconfiguration results."""
    blocks = []
    for strategy in ONLINE_STRATEGIES:
        rows = []
        bank_names = None
        for key in dataset_keys:
            result = run_ar_experiment(key)
            bank_names = result.framework.bank.names()
            run = result.online[strategy]
            steps = steps_row(run, bank_names)
            rows.append(
                [result.display_name]
                + steps
                + [run.iterations, format_number(result.qem[strategy])]
            )
        title = (
            "Table 4(b): AR Online Reconfiguration — "
            + ("Incremental" if strategy == "incremental" else "Adaptive (f=1)")
        )
        headers = ["Dataset"] + list(bank_names) + ["Total", "Error"]
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)
