"""Figure 1: the ApproxIt framework block diagram.

The paper's Figure 1 is architectural — the offline characterization
stage feeding the online reconfiguration loop.  The reproduction's
version annotates each block with the module that implements it, so the
diagram doubles as a code map; rendering it live (rather than pasting a
bitmap) keeps it honest against the codebase.
"""

from __future__ import annotations

_DIAGRAM = r"""
Figure 1: the ApproxIt framework (annotated with implementing modules)

  OFFLINE CHARACTERIZATION                    ONLINE RECONFIGURATION
 +--------------------------------+     +----------------------------------+
 |  application                   |     |  iterative method                |
 |  (repro.apps / repro.solvers)  |     |  x^{k+1} = x^k + a^k d^k         |
 |        |                       |     |  (IterativeMethod.direction/     |
 |        v                       |     |   update, on the selected mode)  |
 |  resilience identification     |     |        |                         |
 |  (core.resilience)             |     |        v                         |
 |        |                       |     |  quality estimator               |
 |        v                       |     |  f, grad, ||dx||  (exact side)   |
 |  probe iterations per mode     |     |        |                         |
 |  vs golden twin                |     |        v                         |
 |  (core.characterize)           |     |  reconfiguration strategy        |
 |        |                       |     |  schemes / angle-LUT             |
 |        v                       |     |  (core.strategies.*)             |
 |  quality error eps_i (Def. 1)  |---->|        |                         |
 |  energy j_i per iteration      |     |        v                         |
 +--------------------------------+     |  mode select -> ApproxEngine     |
                                        |  (arith.engine, hardware.adders) |
          quality guarantee:            |        |                         |
   tolerance passes in approximate      |        v                         |
   modes are never accepted — the       |  energy ledger / run result      |
   run is handed to the exact mode      |  (arith.EnergyLedger, RunResult) |
   (core.framework.ApproxIt.run)        +----------------------------------+
"""


def figure1() -> str:
    """Render the annotated framework diagram."""
    return _DIAGRAM.strip("\n")
