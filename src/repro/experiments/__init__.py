"""Regenerators for every table and figure of the paper's evaluation.

=============  =======================================================
Artifact       Regenerator
=============  =======================================================
Table 1 & 2    :func:`repro.experiments.suite.describe_benchmarks`,
               :func:`repro.experiments.suite.describe_datasets`
Table 3(a)     :func:`repro.experiments.table3.table3a`
Table 3(b)     :func:`repro.experiments.table3.table3b`
Table 4(a)     :func:`repro.experiments.table4.table4a`
Table 4(b)     :func:`repro.experiments.table4.table4b`
Figure 2       :func:`repro.experiments.figure2.figure2`
Figure 3       :func:`repro.experiments.figure3.figure3`
Figure 4       :func:`repro.experiments.figure4.figure4`
=============  =======================================================

All regenerators are plain functions returning formatted text (figures
render as ASCII/CSV since the build environment has no plotting
stack); the ``approxit`` CLI (``repro.experiments.cli``) exposes them
from the command line, and ``benchmarks/`` wraps them in
pytest-benchmark harnesses.
"""

from repro.experiments.runner import (
    ApplicationResult,
    run_ar_experiment,
    run_gmm_experiment,
)

__all__ = [
    "ApplicationResult",
    "run_ar_experiment",
    "run_gmm_experiment",
]
