"""``approxit`` command-line interface.

Regenerate any table or figure of the paper from the shell::

    approxit suite       # Tables 1 and 2
    approxit table3      # Table 3(a) + 3(b)
    approxit table4      # Table 4(a) + 4(b)
    approxit figure2     # manifold-angle trace
    approxit figure3     # clustering scatter panel
    approxit figure4     # energy comparison
    approxit all         # everything, in paper order

Beyond the paper's artifacts::

    approxit characterize --dataset 3cluster   # offline mode impacts
    approxit resilience --dataset 3cluster     # §3.1 block analysis

``--out PATH`` writes the report to a file instead of stdout.
``--parallel N`` prewarms the experiment matrix over ``N`` worker
processes (``0`` = all cores) before rendering table3/table4/figure4/all;
``--batch-size B`` additionally groups up to ``B`` compatible cells per
dataset into one lane-parallel ``run_batch`` shard per worker (results
stay bit-identical — see ``docs/performance.md``).
``--trace DIR`` exports JSONL run traces (see ``docs/observability.md``)
for the ``run`` artifact and for every cell of a ``--parallel`` prewarm.

Offline characterization is cached on disk by default (content
addressed, so stale entries are impossible — see
``docs/performance.md``).  The directory resolves as ``--cache-dir`` >
``$REPRO_CHAR_CACHE`` > ``~/.cache/approxit/characterization``;
``--no-cache`` disables the cache entirely.

The solver also runs as a long-lived service (see ``docs/service.md``)::

    approxit serve --port 8080                 # start the job server
    approxit submit --dataset 3cluster         # submit + wait + print
    approxit submit --sweep incremental,adaptive --dataset hangseng

``serve`` keeps a persistent run store (``--store-dir`` >
``$REPRO_RUN_STORE`` > ``~/.cache/approxit/service``): resubmitting an
identical request is served from disk with zero solver iterations.
``submit`` talks to a running server over HTTP (``--url``), waits for
completion and prints the result (``--json`` for machine-readable
output, e.g. in CI).  ``approxit store gc --max-bytes N --max-age 30d``
prunes the oldest completed runs and their traces from that store
(failure checkpoints are kept).

``--backend NAME`` selects the kernel backend (NumPy reference, or the
Numba JIT backend when installed) for whatever the command runs, and is
carried on submitted service requests — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="approxit",
        description="Regenerate the tables and figures of the ApproxIt paper.",
    )
    parser.add_argument(
        "artifact",
        choices=[
            "suite",
            "table3",
            "table4",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "all",
            "characterize",
            "resilience",
            "extensions",
            "motivation",
            "run",
            "serve",
            "submit",
            "store",
        ],
        help="which artifact to regenerate (or service verb: "
        "serve/submit/store)",
    )
    parser.add_argument(
        "verb",
        nargs="?",
        default=None,
        help="sub-verb for the store artifact (currently: gc)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="kernel backend for every engine this command builds "
        "(numpy reference, or numba when installed); also exported as "
        "$REPRO_BACKEND so --parallel workers inherit it, and carried "
        "on submitted service requests (default: $REPRO_BACKEND or "
        "numpy)",
    )
    parser.add_argument(
        "--dataset",
        default="3cluster",
        help="dataset key for figure3/characterize/resilience/run "
        "(default: 3cluster)",
    )
    parser.add_argument(
        "--strategy",
        default="incremental",
        help="strategy spec for the run artifact (default: incremental)",
    )
    parser.add_argument(
        "--save",
        default=None,
        help="for run: also persist the run as JSON to this path",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan experiment sweep cells out over N worker processes "
        "before rendering (table3/table4/figure4/all; 0 = all cores)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="lane-parallel batching for --parallel prewarms: group up "
        "to B compatible sweep cells per dataset into one lock-step "
        "run_batch shard (bit-identical results; methods that refuse "
        "the batched path fall back to solo cells, with the refusal "
        "reason printed on stderr)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="export JSONL run traces to this directory (run artifact "
        "and --parallel prewarms; one file per run, safe under "
        "--parallel)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="characterization-cache directory (default: $REPRO_CHAR_CACHE "
        "or ~/.cache/approxit/characterization)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk characterization cache",
    )
    parser.add_argument(
        "--out", default=None, help="write the report to this file instead of stdout"
    )
    service = parser.add_argument_group("service (serve/submit)")
    service.add_argument(
        "--host", default="127.0.0.1", help="serve: bind address"
    )
    service.add_argument(
        "--port", type=int, default=8080, help="serve: bind port (0 = ephemeral)"
    )
    service.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="serve: run-store directory (default: $REPRO_RUN_STORE or "
        "~/.cache/approxit/service)",
    )
    service.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="submit: server base URL",
    )
    service.add_argument(
        "--tenant", default="default", help="submit: tenant identifier"
    )
    service.add_argument(
        "--max-iter",
        type=int,
        default=None,
        metavar="N",
        help="submit: iteration-budget override",
    )
    service.add_argument(
        "--sweep",
        default=None,
        metavar="SPECS",
        help="submit: comma-separated strategy specs — submit a sweep "
        "(Truth implicit) instead of a single solve",
    )
    service.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECS",
        help="submit: give up waiting after this long (default: 300)",
    )
    service.add_argument(
        "--json",
        action="store_true",
        help="submit: print the raw job/sweep JSON instead of a summary",
    )
    store = parser.add_argument_group("store (store gc)")
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="store gc: evict oldest completed runs (and their traces) "
        "until runs/ + traces/ fit in N bytes; failures are kept",
    )
    store.add_argument(
        "--max-age",
        default=None,
        metavar="AGE",
        help="store gc: additionally evict entries older than AGE — "
        "seconds, or with an s/m/h/d suffix (e.g. 30d)",
    )
    return parser


#: Seconds per --max-age suffix unit.
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_age(text: str) -> float:
    """``"90"``/``"90s"``/``"15m"``/``"6h"``/``"30d"`` -> seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise ValueError(f"invalid --max-age {text!r}") from None
    if seconds < 0:
        raise ValueError(f"--max-age must be >= 0, got {seconds}")
    return seconds


def resolve_cache_dir(
    cache_dir: str | None = None, no_cache: bool = False
) -> str | None:
    """The characterization-cache directory the CLI should use.

    Resolution order: ``--no-cache`` (→ ``None``) > ``--cache-dir`` >
    ``$REPRO_CHAR_CACHE`` (empty disables) > the user cache directory.
    """
    if no_cache:
        return None
    if cache_dir:
        return cache_dir
    env = os.environ.get("REPRO_CHAR_CACHE")
    if env is not None:
        return env or None
    return os.path.join(
        os.path.expanduser("~"), ".cache", "approxit", "characterization"
    )


def resolve_store_dir(store_dir: str | None = None) -> str:
    """The run-store directory ``approxit serve`` should use.

    Resolution order: ``--store-dir`` > ``$REPRO_RUN_STORE`` > the user
    cache directory.
    """
    if store_dir:
        return store_dir
    env = os.environ.get("REPRO_RUN_STORE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "approxit", "service")


def _serve(args) -> int:
    """Run the solver service until interrupted."""
    import asyncio

    from repro.service import JobQueue, RunStore, ServiceServer

    store_dir = resolve_store_dir(args.store_dir)
    queue = JobQueue(
        RunStore(store_dir),
        max_workers=(args.parallel or None) if args.parallel != 0 else None,
        batch_size=args.batch_size,
        cache_dir=resolve_cache_dir(args.cache_dir, args.no_cache),
    )
    server = ServiceServer(queue, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"approxit service on {server.url} (store: {store_dir})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _store(args) -> int:
    """Run-store maintenance verbs (currently ``gc``)."""
    if args.verb != "gc":
        sys.stderr.write(
            f"unknown store verb {args.verb!r}; supported: gc\n"
        )
        return 2
    from repro.service import RunStore

    if args.max_bytes is None and args.max_age is None:
        sys.stderr.write("store gc needs --max-bytes and/or --max-age\n")
        return 2
    try:
        max_age_s = None if args.max_age is None else parse_age(args.max_age)
    except ValueError as exc:
        sys.stderr.write(f"{exc}\n")
        return 2
    store_dir = resolve_store_dir(args.store_dir)
    summary = RunStore(store_dir).gc(
        max_bytes=args.max_bytes, max_age_s=max_age_s
    )
    print(
        f"store gc ({store_dir}): evicted {summary['evicted_runs']} runs, "
        f"{summary['evicted_traces']} traces "
        f"({summary['freed_bytes']} bytes freed); "
        f"{summary['kept_runs']} runs kept ({summary['kept_bytes']} bytes)"
    )
    return 0


def _http_json(method: str, url: str, body: dict | None = None, timeout: float = 60.0):
    """One JSON request to a running service; returns (status, payload)."""
    import json
    import urllib.error
    import urllib.request

    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _submit(args) -> int:
    """Submit one solve (or sweep) to a running server and wait."""
    import urllib.error

    try:
        return _submit_inner(args)
    except urllib.error.URLError as exc:
        sys.stderr.write(f"cannot reach server at {args.url}: {exc.reason}\n")
        return 1


def _submit_inner(args) -> int:
    import json
    import time

    url = args.url.rstrip("/")
    deadline = time.monotonic() + args.timeout
    if args.sweep:
        body = {
            "dataset": args.dataset,
            "strategies": [s.strip() for s in args.sweep.split(",") if s.strip()],
            "tenant": args.tenant,
            "max_iter": args.max_iter,
            "backend": args.backend,
        }
        status, payload = _http_json("POST", f"{url}/sweeps", body)
        if status not in (200, 202):
            sys.stderr.write(f"submit failed ({status}): {payload.get('error')}\n")
            return 1
        while payload["state"] not in ("done", "failed"):
            if time.monotonic() > deadline:
                sys.stderr.write(f"timed out waiting for {payload['id']}\n")
                return 1
            time.sleep(0.2)
            status, payload = _http_json("GET", f"{url}/sweeps/{payload['id']}")
        if args.json:
            print(json.dumps(payload, indent=2))
        elif payload["state"] == "done":
            print(payload["table"])
        if payload["state"] == "failed":
            for label, job in payload["jobs"].items():
                if job["error"]:
                    sys.stderr.write(f"lane {label} failed: {job['error']}\n")
            return 1
        return 0

    body = {
        "dataset": args.dataset,
        "strategy": args.strategy,
        "tenant": args.tenant,
        "max_iter": args.max_iter,
        "backend": args.backend,
    }
    status, payload = _http_json("POST", f"{url}/jobs", body)
    if status not in (200, 202):
        sys.stderr.write(f"submit failed ({status}): {payload.get('error')}\n")
        return 1
    while payload["state"] not in ("done", "failed"):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            sys.stderr.write(f"timed out waiting for {payload['id']}\n")
            return 1
        status, payload = _http_json(
            "GET",
            f"{url}/jobs/{payload['id']}?wait={min(remaining, 30):.0f}",
            timeout=min(remaining, 30) + 30,
        )
    if args.json:
        print(json.dumps(payload, indent=2))
    elif payload["state"] == "done":
        result = payload["result"]
        source = "run store (cached)" if payload["cached"] else "fresh computation"
        print(
            f"{payload['id']}: {args.dataset} / {result['strategy']} — "
            f"{'converged' if result['converged'] else 'NOT converged'} in "
            f"{result['iterations']} iterations, objective "
            f"{result['objective']:.6g}, energy {result['energy']:.6g} "
            f"[{source}, {payload['executed_iterations']} iterations executed]"
        )
    if payload["state"] == "failed":
        sys.stderr.write(f"{payload['id']} failed: {payload['error']}\n")
        return 1
    return 0


#: Artifacts whose underlying experiment matrix can be prewarmed in
#: parallel before the (serial, cache-hitting) rendering pass.
_PARALLEL_ARTIFACTS = {
    "table3": ("3cluster", "3d3cluster", "4cluster"),
    "figure4": None,  # all datasets
    "table4": ("hangseng", "nasdaq", "sp500"),
    "all": None,
}


def _prewarm(
    artifact: str,
    workers: int,
    trace_dir: str | None = None,
    batch_size: int | None = None,
) -> None:
    from repro.experiments.parallel import SweepPool
    from repro.experiments.runner import run_experiments_parallel

    if artifact not in _PARALLEL_ARTIFACTS:
        return
    # One persistent pool for the whole prewarm: workers spawn once and
    # keep their warmed imports/memo caches across every sweep cell.
    with SweepPool(max_workers=workers if workers > 0 else None) as pool:
        run_experiments_parallel(
            dataset_keys=_PARALLEL_ARTIFACTS[artifact],
            trace_dir=trace_dir,
            pool=pool,
            batch_size=batch_size,
        )


def _generate(
    artifact: str,
    dataset: str,
    strategy: str = "incremental",
    save: str | None = None,
    trace_dir: str | None = None,
) -> str:
    # Imports are local so `approxit --help` stays fast.
    from repro.experiments.figure1 import figure1
    from repro.experiments.figure2 import figure2
    from repro.experiments.figure3 import figure3
    from repro.experiments.figure4 import figure4
    from repro.experiments.suite import describe_benchmarks, describe_datasets
    from repro.experiments.table3 import table3a, table3b
    from repro.experiments.table4 import table4a, table4b

    if artifact == "figure1":
        return figure1()
    if artifact == "run":
        return _run_report(dataset, strategy, save, trace_dir)
    if artifact == "suite":
        return describe_benchmarks() + "\n\n" + describe_datasets()
    if artifact == "table3":
        return table3a() + "\n\n" + table3b()
    if artifact == "table4":
        return table4a() + "\n\n" + table4b()
    if artifact == "figure2":
        return figure2()
    if artifact == "figure3":
        return figure3(dataset)
    if artifact == "figure4":
        return figure4()
    if artifact == "characterize":
        return _characterization_report(dataset)
    if artifact == "resilience":
        return _resilience_report(dataset)
    if artifact == "motivation":
        from repro.experiments.motivation import motivation_table

        return motivation_table(dataset)
    if artifact == "extensions":
        from repro.experiments.extensions import (
            pagerank_table,
            reconfiguration_cost_table,
            seed_robustness_table,
        )

        return "\n\n".join(
            [
                pagerank_table(),
                reconfiguration_cost_table(),
                seed_robustness_table(),
            ]
        )
    parts = [
        describe_benchmarks(),
        describe_datasets(),
        figure1(),
        table3a(),
        table3b(),
        figure3(dataset),
        table4a(),
        table4b(),
        figure2(),
        figure4(),
    ]
    return "\n\n".join(parts)


def _build_method(dataset_key: str):
    from repro.apps.autoregression import AutoRegression
    from repro.apps.gmm import GaussianMixtureEM
    from repro.data.registry import DATASETS, load_dataset

    spec = DATASETS[dataset_key]
    dataset = load_dataset(dataset_key)
    if spec.application == "gmm":
        return GaussianMixtureEM.from_dataset(dataset)
    return AutoRegression.from_dataset(dataset)


def _characterization_report(dataset_key: str) -> str:
    from repro.experiments.render import format_number, format_table
    from repro.experiments.runner import _build_framework

    framework, _ = _build_framework(dataset_key)
    table = framework.characterization()
    rows = [
        [
            name,
            format_number(impact.quality_error),
            format_number(impact.energy_per_iteration),
            impact.probes,
        ]
        for name, impact in table.impacts.items()
    ]
    return format_table(
        ["Mode", "Quality error (Def. 1)", "Energy / iteration", "Probes"],
        rows,
        title=f"Offline characterization on {dataset_key}",
    )


def _resilience_report(dataset_key: str) -> str:
    from repro.apps.gmm import GaussianMixtureEM
    from repro.core.resilience import analyze_resilience, gmm_blocks
    from repro.experiments.render import format_number, format_table

    method = _build_method(dataset_key)
    if isinstance(method, GaussianMixtureEM):
        blocks = gmm_blocks(method)
    else:
        import numpy as np

        blocks = {"coefficients": np.arange(method.initial_state().size)}
    rows = []
    for scale in (1e-3, 1e-2, 1e-1):
        results = analyze_resilience(method, blocks, noise_scale=scale, trials=2)
        for name, impact in results.items():
            rows.append(
                [
                    name,
                    f"{scale:g}",
                    format_number(impact.mean_quality_error),
                    impact.crashed,
                    "resilient" if impact.resilient else "SENSITIVE",
                ]
            )
    return format_table(
        ["Block", "Noise scale", "Quality error", "Crashes", "Verdict"],
        rows,
        title=f"Section-3.1 resilience analysis on {dataset_key}",
    )


def _run_report(
    dataset_key: str,
    strategy: str,
    save: str | None,
    trace_dir: str | None = None,
) -> str:
    from pathlib import Path

    from repro.core.reporting import comparison_report, save_run
    from repro.obs import TraceRecorder, render_trace
    from repro.experiments.runner import _build_framework

    framework, _ = _build_framework(dataset_key)
    recorder = None
    if trace_dir is not None:
        recorder = TraceRecorder(label=f"{dataset_key}:{strategy}")
    truth = framework.run_truth()
    run = framework.run(strategy=strategy, observer=recorder)
    extra = ""
    if recorder is not None:
        path = Path(trace_dir) / f"{dataset_key}_{strategy}.jsonl"
        recorder.save(
            path,
            meta={
                "dataset": dataset_key,
                "run_label": strategy,
                "strategy": run.strategy_name,
            },
        )
        run.trace_path = str(path)
        extra = (
            f"\n\n{render_trace(recorder.events, mode_order=framework.bank.names()[::-1])}"
            f"\ntrace written to {path}"
        )
    if save:
        save_run(run, save)
    report = comparison_report({"truth": truth, strategy: run}, reference="truth")
    return report + extra


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.backend:
        # Exported (not just passed) so --parallel prewarm workers and
        # the serve dispatcher's pool inherit the same backend.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.artifact == "store":
        return _store(args)
    if args.artifact == "serve":
        return _serve(args)
    if args.artifact == "submit":
        return _submit(args)
    from repro.experiments.runner import set_default_cache_dir

    # Installed process-wide so the serial renderers, the run/
    # characterize artifacts and every prewarm worker share one cache.
    set_default_cache_dir(resolve_cache_dir(args.cache_dir, args.no_cache))
    if args.parallel is not None:
        _prewarm(args.artifact, args.parallel, args.trace, args.batch_size)
    report = _generate(args.artifact, args.dataset, args.strategy, args.save, args.trace)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    else:
        sys.stdout.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
