"""The Section-2.3 motivation, as a regenerable artifact.

The paper motivates ApproxIt with the K-means discussion of Chippa et
al.'s sensor + PID dynamic effort scaling: the MCD sensor is ad hoc,
and the control loop gives no final-quality guarantee.  This artifact
runs the head-to-head on a Table-2 cluster dataset: Truth, ApproxIt's
two strategies, and the PID baseline at several quality targets —
showing the baseline's final error varying with an arbitrary knob while
ApproxIt stays at zero.
"""

from __future__ import annotations

from repro.apps.kmeans import KMeans
from repro.apps.qem import cluster_assignment_hamming
from repro.core.baseline_pid import PidController, PidEffortStrategy
from repro.core.framework import ApproxIt
from repro.core.sensors import MeanCentroidDistanceSensor
from repro.data.registry import load_dataset
from repro.experiments.render import format_number, format_table


def motivation_table(dataset_key: str = "3cluster", seed: int = 0) -> str:
    """Render the §2.3 comparison on one cluster dataset."""
    dataset = load_dataset(dataset_key)
    method = KMeans.from_dataset(dataset, seed=seed)
    framework = ApproxIt(method)
    truth = framework.run_truth()
    truth_labels = method.assignments(truth.x)

    def qem(run):
        return cluster_assignment_hamming(
            method.assignments(run.x), truth_labels, method.n_clusters
        )

    rows = [["Truth (exact)", truth.iterations, 0, "1", "verified"]]
    for strategy in ("incremental", "adaptive"):
        run = framework.run(strategy=strategy)
        rows.append(
            [
                f"ApproxIt {strategy}",
                run.iterations,
                qem(run),
                format_number(run.energy_relative_to(truth)),
                "verified",
            ]
        )
    for target in (0.9, 0.7, 0.5):
        pid = PidEffortStrategy(
            method,
            sensor=MeanCentroidDistanceSensor(),
            target=target,
            controller=PidController(kp=1.5, ki=0.3),
        )
        run = framework.run(strategy=pid)
        rows.append(
            [
                f"PID (MCD target {target:.0%})",
                run.iterations,
                qem(run),
                format_number(run.energy_relative_to(truth)),
                f"stopped on {run.mode_trace[-1]}",
            ]
        )
    return format_table(
        ["Configuration", "Iterations", "QEM", "Energy", "Final-quality check"],
        rows,
        title=(
            f"Section 2.3 motivation on {dataset.name}: sensor+PID effort "
            "scaling vs ApproxIt (K-means)"
        ),
    )
