"""Tables 1 and 2: the benchmark suite and dataset descriptions."""

from __future__ import annotations

from repro.data.registry import DATASETS
from repro.experiments.render import format_table

#: Table 1 of the paper: benchmark applications.
BENCHMARKS = [
    (
        "Gaussian Mixture Models",
        "Nonlinear Clustering and Classification, Convex Optimization",
        "Hamming Distance",
    ),
    (
        "AutoRegression",
        "Time Series, Regression Problems",
        "Least Square Error with l2 Norm",
    ),
]


def describe_benchmarks() -> str:
    """Render Table 1 (benchmark suite description)."""
    return format_table(
        ["Benchmark", "Representative Fields", "Quality Evaluation Metric"],
        BENCHMARKS,
        title="Table 1: Benchmark Description",
    )


def describe_datasets() -> str:
    """Render Table 2 (dataset and parameter description)."""
    rows = []
    for spec in DATASETS.values():
        rows.append(
            (
                spec.display_name,
                "Gaussian Mixture Model"
                if spec.application == "gmm"
                else "AutoRegression",
                spec.shape,
                spec.source,
                spec.max_iter,
                f"{spec.tolerance:g}",
                spec.adder_impact,
            )
        )
    return format_table(
        [
            "Dataset",
            "Application",
            "Samples",
            "Source",
            "MAX_ITER",
            "Convergence",
            "Adder Impact",
        ],
        rows,
        title="Table 2: Dataset and Parameter Description",
    )
