"""Figure 2: the parameter-manifold steepness intuition.

The paper's Figure 2 shows a non-convex parameter manifold in 3-D to
argue that error tolerance is *not* monotone along a trajectory, which
motivates the bidirectional angle-based strategy.  This regenerator
traces the manifold angle alpha along a gradient-descent run on the
Rosenbrock valley (the canonical non-convex surface) and shows that the
angle both falls and *rises* along the way — exactly the phenomenon the
figure illustrates — then renders the trace as an ASCII sparkline plus
a CSV block for external plotting.
"""

from __future__ import annotations

import numpy as np

from repro.arith.engine import ApproxEngine, EnergyLedger
from repro.arith.fixed import FixedPointFormat
from repro.arith.modes import default_mode_bank
from repro.core.strategies.adaptive import AdaptiveAngleStrategy
from repro.solvers.functions import RosenbrockFunction
from repro.solvers.gradient_descent import GradientDescent

_SPARK = " .:-=+*#%@"


def angle_trace(iterations: int = 120) -> list[tuple[int, float, float]]:
    """``(iteration, gradient_norm, angle_deg)`` along a Rosenbrock run."""
    fn = RosenbrockFunction(dim=2)
    method = GradientDescent(
        fn,
        x0=np.array([-1.2, 1.0]),
        learning_rate=1.5e-3,
        max_iter=iterations,
        tolerance=1e-14,
    )
    bank = default_mode_bank()
    engine = ApproxEngine(bank.accurate, FixedPointFormat(32, 16), EnergyLedger())
    strategy = AdaptiveAngleStrategy()
    strategy.start(bank, _dummy_characterization(bank))

    trace = []
    x = method.initial_state()
    for k in range(iterations):
        grad_norm = float(np.linalg.norm(method.gradient(x)))
        trace.append((k, grad_norm, strategy.manifold_angle(grad_norm)))
        d = method.direction(x, engine)
        x = method.update(x, method.step_size(x, d, k), d, engine)
    return trace


def _dummy_characterization(bank):
    from repro.core.characterize import CharacterizationTable, ModeImpact

    impacts = {
        m.name: ModeImpact(
            mode_name=m.name,
            quality_error=10.0 ** -(2 * m.index + 1) if not m.is_accurate else 0.0,
            energy_per_iteration=m.energy_per_add,
            probes=1,
        )
        for m in bank
    }
    return CharacterizationTable(impacts=impacts, f_x0=10.0, f_x1=9.0)


def sparkline(values: list[float], lo: float = 0.0, hi: float = 90.0) -> str:
    """One-character-per-value intensity strip."""
    chars = []
    span = max(hi - lo, 1e-12)
    for v in values:
        idx = int((min(max(v, lo), hi) - lo) / span * (len(_SPARK) - 1))
        chars.append(_SPARK[idx])
    return "".join(chars)


def figure2() -> str:
    """Render the Figure-2 angle trace report."""
    trace = angle_trace()
    angles = [a for _, _, a in trace]
    rising = sum(1 for a, b in zip(angles, angles[1:]) if b > a + 1e-9)
    lines = [
        "Figure 2: manifold steepness angle along a non-convex descent",
        "(Rosenbrock valley; angle in degrees, 90 = steepest)",
        "",
        "angle " + sparkline(angles),
        "",
        f"angle range: [{min(angles):.1f}, {max(angles):.1f}] deg; "
        f"{rising} of {len(angles) - 1} transitions are *rising* — the "
        "manifold steepens again after flattening, so a one-directional "
        "strategy would be stuck at high accuracy.",
        "",
        "iteration,gradient_norm,angle_deg",
    ]
    lines += [f"{k},{g:.6g},{a:.3f}" for k, g, a in trace]
    return "\n".join(lines)
