"""Table 3: results on Gaussian mixture models.

(a) single-mode configurations — iterations, QEM (Hamming distance vs
Truth) and normalized energy per dataset; (b) online reconfiguration —
per-level accepted step counts, totals and final error for the
incremental and adaptive (f=1) strategies.
"""

from __future__ import annotations

from repro.experiments.render import format_number, format_table
from repro.experiments.runner import (
    GMM_DATASETS,
    ONLINE_STRATEGIES,
    SINGLE_MODES,
    iteration_cell,
    run_gmm_experiment,
    steps_row,
)


def table3a(dataset_keys: tuple[str, ...] = GMM_DATASETS) -> str:
    """Render Table 3(a): GMM single-mode results."""
    headers = ["Configuration"]
    for key in dataset_keys:
        name = run_gmm_experiment(key).display_name
        headers += [f"{name} Iter", f"{name} QEM", f"{name} Energy"]

    rows = []
    for label in list(SINGLE_MODES) + ["truth"]:
        row = ["Truth" if label == "truth" else label]
        for key in dataset_keys:
            result = run_gmm_experiment(key)
            run = result.run_of(label)
            row += [
                iteration_cell(run),
                int(result.qem[label]),
                format_number(result.energy_of(label)),
            ]
        rows.append(row)
    return format_table(headers, rows, title="Table 3(a): GMM Single Mode Results")


def table3b(dataset_keys: tuple[str, ...] = GMM_DATASETS) -> str:
    """Render Table 3(b): GMM online reconfiguration results."""
    blocks = []
    for strategy in ONLINE_STRATEGIES:
        rows = []
        bank_names = None
        for key in dataset_keys:
            result = run_gmm_experiment(key)
            bank_names = result.framework.bank.names()
            run = result.online[strategy]
            steps = steps_row(run, bank_names)
            rows.append(
                [result.display_name]
                + steps
                + [run.iterations, int(result.qem[strategy])]
            )
        title = (
            "Table 3(b): GMM Online Reconfiguration — "
            + ("Incremental" if strategy == "incremental" else "Adaptive (f=1)")
        )
        headers = ["Dataset"] + list(bank_names) + ["Total", "Error"]
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)
