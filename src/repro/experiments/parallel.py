"""Process-pool fan-out with a serial fallback.

Experiment sweep cells (one ``(dataset, run-label)`` pair each) are
independent and CPU-bound, so they parallelize across processes with no
shared state.  :func:`process_map` is the one primitive the runners use:
it behaves exactly like ``[fn(item) for item in items]`` — same results,
same ordering, same exceptions — but fans the calls out over a
``concurrent.futures.ProcessPoolExecutor`` when one is available and
worth spinning up.  Sandboxed or single-core environments silently fall
back to the serial loop, so callers never need to care which one ran.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return os.cpu_count() or 1


def process_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    max_workers: int | None = None,
) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over processes.

    Args:
        fn: a module-level (picklable) callable.
        items: the work list; results come back in the same order.
        max_workers: pool size; ``None`` uses :func:`default_workers`,
            and values ``<= 1`` (or a single-item work list) run serially
            without touching multiprocessing at all.

    Exceptions raised by ``fn`` propagate to the caller either way.  A
    pool that cannot be created or dies for environmental reasons (fork
    restrictions, resource limits) triggers a warning and a serial
    retry — the computation still completes.
    """
    work: Sequence[_T] = list(items)
    if max_workers is None:
        max_workers = default_workers()
    if max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(work))) as pool:
            return list(pool.map(fn, work))
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in work]
