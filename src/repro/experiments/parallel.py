"""Process-pool fan-out with a serial fallback.

Experiment sweep cells (one ``(dataset, run-label)`` pair each) are
independent and CPU-bound, so they parallelize across processes with no
shared state.  :func:`process_map` is the one primitive the runners use:
it behaves exactly like ``[fn(item) for item in items]`` — same results,
same ordering, same exceptions — but fans the calls out over a
``concurrent.futures.ProcessPoolExecutor`` when one is available and
worth spinning up.  Sandboxed or single-core environments silently fall
back to the serial loop, so callers never need to care which one ran.

Failure handling draws a hard line between two very different events:

* the *pool environment* failing (fork restrictions, resource limits, a
  worker process dying) — recoverable, so the computation retries
  serially with a warning;
* ``fn`` *itself* raising — the caller's error, re-raised as-is.  In
  particular an ``OSError`` raised inside ``fn`` must not masquerade as
  "process pool unavailable" and silently re-run every cell serially,
  duplicating side effects before surfacing the real error.  Worker
  calls are therefore wrapped so their exceptions come back as values
  and are re-raised at the call site.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return os.cpu_count() or 1


class _WorkerFailure:
    """An exception raised by ``fn`` inside a worker, shipped back as a
    value so it cannot be confused with a pool-environment failure."""

    __slots__ = ("exc",)

    def __init__(self, exc: Exception):
        self.exc = exc


class _TrappedCall:
    """Picklable wrapper executing ``fn`` and trapping its exceptions."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]):
        self.fn = fn

    def __call__(self, item: _T):
        try:
            return self.fn(item)
        except Exception as exc:
            return _WorkerFailure(exc)


def process_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    max_workers: int | None = None,
) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over processes.

    Args:
        fn: a module-level (picklable) callable.
        items: the work list; results come back in the same order.
        max_workers: pool size; ``None`` uses :func:`default_workers`,
            and values ``<= 1`` (or a single-item work list) run serially
            without touching multiprocessing at all.

    Exceptions raised by ``fn`` propagate to the caller either way —
    from the pool they are re-raised here, never retried.  Only a pool
    that cannot be created or dies for environmental reasons (fork
    restrictions, resource limits, a killed worker) triggers a warning
    and a serial retry — the computation still completes.
    """
    work: Sequence[_T] = list(items)
    if max_workers is None:
        max_workers = default_workers()
    if max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(work))) as pool:
            results = list(pool.map(_TrappedCall(fn), work))
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in work]
    for result in results:
        if isinstance(result, _WorkerFailure):
            raise result.exc
    return results
