"""Process-pool fan-out with a serial fallback.

Experiment sweep cells (one ``(dataset, run-label)`` pair each) are
independent and CPU-bound, so they parallelize across processes with no
shared state.  Two primitives are offered:

* :class:`SweepPool` — a reusable executor wrapper.  Worker processes
  are spawned once and survive across :meth:`SweepPool.map` calls, so a
  CLI invocation that renders several tables pays process start-up (and
  interpreter/import warm-up) once instead of per sweep, and per-process
  memo caches stay warm between sweeps.
* :func:`process_map` — the one-shot form, now a thin wrapper creating
  a :class:`SweepPool` for a single map.  It behaves exactly like
  ``[fn(item) for item in items]`` — same results, same ordering, same
  exceptions.

Sandboxed or single-core environments silently fall back to the serial
loop, so callers never need to care which one ran.

Failure handling draws a hard line between two very different events:

* the *pool environment* failing (fork restrictions, resource limits, a
  worker process dying) — recoverable, so the computation retries
  serially with a warning;
* ``fn`` *itself* raising — the caller's error, re-raised as-is.  In
  particular an ``OSError`` raised inside ``fn`` must not masquerade as
  "process pool unavailable" and silently re-run every cell serially,
  duplicating side effects before surfacing the real error.  Worker
  calls are therefore wrapped so their exceptions come back as values
  and are re-raised at the call site.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """Worker count when the caller does not pin one.

    Prefers the process's CPU *affinity* mask over the raw core count:
    CI containers and ``taskset``-restricted jobs often see all host
    cores through ``os.cpu_count()`` while being allowed to run on a
    few, and oversubscribing those thrashes instead of speeding up.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without affinity
        return os.cpu_count() or 1


class _WorkerFailure:
    """An exception raised by ``fn`` inside a worker, shipped back as a
    value so it cannot be confused with a pool-environment failure."""

    __slots__ = ("exc",)

    def __init__(self, exc: Exception):
        self.exc = exc


class _ChunkedCall:
    """Picklable wrapper running ``fn`` over one chunk of the work list.

    Every item in the chunk is evaluated even after one fails — the
    failure travels back as a :class:`_WorkerFailure` value in its slot,
    keeping result positions aligned with submission order and matching
    the pool contract that ``fn``'s errors are re-raised at the call
    site after one full pass, never retried.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]):
        self.fn = fn

    def __call__(self, chunk: Sequence[_T]) -> list:
        out: list = []
        for item in chunk:
            try:
                out.append(self.fn(item))
            except Exception as exc:
                out.append(_WorkerFailure(exc))
        return out


def _balanced_chunks(
    work: Sequence[_T], chunk_size: int | None, max_workers: int
) -> list[list[_T]]:
    """Split ``work`` into contiguous chunks whose sizes differ by ≤ 1.

    ``chunk_size`` is an upper bound that fixes the chunk *count*
    (``ceil(len(work) / chunk_size)``); the items are then spread
    evenly, so 12 items at ``chunk_size=5`` become ``[4, 4, 4]`` rather
    than ``[5, 5, 2]`` — no worker is left with a ragged tail chunk
    while the rest idle.  Without ``chunk_size`` the count targets four
    chunks per worker for latency smoothing.
    """
    n = len(work)
    if chunk_size:
        n_chunks = -(-n // int(chunk_size))  # ceil division
    else:
        n_chunks = min(n, max_workers * 4)
    base, extra = divmod(n, n_chunks)
    chunks: list[list[_T]] = []
    start = 0
    for idx in range(n_chunks):
        size = base + (1 if idx < extra else 0)
        chunks.append(list(work[start : start + size]))
        start += size
    return chunks


class SweepPool:
    """A reusable process pool shared across many sweep ``map`` calls.

    The underlying ``ProcessPoolExecutor`` is created lazily on the
    first :meth:`map` that actually needs it and *reused* by every
    later call until :meth:`close` (or the ``with`` block) tears it
    down — workers keep their warmed imports and per-process memo
    caches between sweeps.  Work is submitted in chunks so large cell
    lists don't pay per-item IPC.

    Failure semantics match :func:`process_map` exactly: a pool that
    cannot be created or dies for environmental reasons degrades to the
    serial loop with a warning (and stays serial — a broken environment
    does not heal mid-invocation), while exceptions raised by ``fn``
    itself come back as values and are re-raised at the call site,
    never retried, never mistaken for pool failure.

    Args:
        max_workers: pool size; ``None`` uses :func:`default_workers`.
            Values ``<= 1`` never touch multiprocessing.
        chunk_size: upper bound on items per worker submission; the
            work list is split into size-balanced chunks (differing by
            at most one item) so the final chunk is never a ragged
            tail.  ``None`` derives a chunk count from the work size
            and worker count per call.
    """

    def __init__(
        self, max_workers: int | None = None, chunk_size: int | None = None
    ):
        self.max_workers = (
            default_workers() if max_workers is None else int(max_workers)
        )
        self.chunk_size = chunk_size
        self._pool = None
        self._serial_fallback = False
        # One map at a time: the service dispatcher submits from its
        # own thread while the owning CLI/tests may also map, and the
        # executor's lazy creation + sticky-fallback state is not safe
        # under interleaving.  Concurrent callers serialize here (their
        # cells still fan out across the worker processes).
        self._map_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:  # a dead pool may fail its own teardown
                pass

    # -- execution -----------------------------------------------------
    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """``[fn(item) for item in items]`` over the persistent workers.

        Results come back in submission order; see the class docstring
        for the failure contract.  Safe to call from multiple threads
        (maps serialize on an internal lock).
        """
        work: Sequence[_T] = list(items)
        with self._map_lock:
            if self.max_workers <= 1 or len(work) <= 1 or self._serial_fallback:
                return [fn(item) for item in work]
            chunks = _balanced_chunks(work, self.chunk_size, self.max_workers)
            try:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
                nested = list(self._pool.map(_ChunkedCall(fn), chunks))
            except (BrokenProcessPool, OSError, PermissionError) as exc:
                warnings.warn(
                    f"process pool unavailable ({exc!r}); running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._discard_pool()
                self._serial_fallback = True
                return [fn(item) for item in work]
        results: list = [item for chunk in nested for item in chunk]
        for result in results:
            if isinstance(result, _WorkerFailure):
                raise result.exc
        return results


def process_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    max_workers: int | None = None,
) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over processes.

    The one-shot form of :class:`SweepPool` — a pool is created for
    this call and torn down after it.  Callers issuing several maps in
    one invocation should hold a :class:`SweepPool` instead.

    Args:
        fn: a module-level (picklable) callable.
        items: the work list; results come back in the same order.
        max_workers: pool size; ``None`` uses :func:`default_workers`,
            and values ``<= 1`` (or a single-item work list) run serially
            without touching multiprocessing at all.

    Exceptions raised by ``fn`` propagate to the caller either way —
    from the pool they are re-raised here, never retried.  Only a pool
    that cannot be created or dies for environmental reasons (fork
    restrictions, resource limits, a killed worker) triggers a warning
    and a serial retry — the computation still completes.
    """
    work: Sequence[_T] = list(items)
    if max_workers is None:
        max_workers = default_workers()
    if max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with SweepPool(max_workers=min(max_workers, len(work))) as pool:
        return pool.map(fn, work)
