"""Figure 4: GMM energy-consumption comparison.

The paper's Figure 4 compares total approximate-part energy and
per-iteration energy for Truth vs the incremental and adaptive
strategies on the three GMM datasets, quoting savings of
52.4/25.0/33.6 % (incremental) and 63.8/28.4/44.0 % (adaptive).  This
regenerator prints the same two panels as tables plus ASCII bars.
"""

from __future__ import annotations

from repro.experiments.render import format_number, format_table
from repro.experiments.runner import GMM_DATASETS, run_gmm_experiment

_BAR_WIDTH = 40


def _bar(fraction: float) -> str:
    n = int(round(min(max(fraction, 0.0), 1.5) / 1.5 * _BAR_WIDTH))
    return "#" * n


def figure4(dataset_keys: tuple[str, ...] = GMM_DATASETS) -> str:
    """Render the Figure-4 energy comparison report."""
    total_rows = []
    per_iter_rows = []
    savings_lines = []
    for key in dataset_keys:
        result = run_gmm_experiment(key)
        labels = ["truth", "incremental", "adaptive"]
        for label in labels:
            run = result.run_of(label)
            rel = result.energy_of(label)
            total_rows.append(
                [
                    result.display_name,
                    "Truth" if label == "truth" else label,
                    format_number(rel),
                    _bar(rel),
                ]
            )
            per_iter = rel / max(run.iterations, 1) * result.truth.iterations
            per_iter_rows.append(
                [
                    result.display_name,
                    "Truth" if label == "truth" else label,
                    format_number(per_iter),
                    _bar(per_iter),
                ]
            )
        savings_lines.append(
            f"{result.display_name}: incremental saves "
            f"{result.savings_of('incremental'):.1f} %, adaptive saves "
            f"{result.savings_of('adaptive'):.1f} % vs Truth"
        )

    parts = [
        format_table(
            ["Dataset", "Configuration", "Total energy (Truth=1)", ""],
            total_rows,
            title="Figure 4 (top): total energy on approximate parts",
        ),
        "",
        format_table(
            ["Dataset", "Configuration", "Energy/iteration (Truth=1)", ""],
            per_iter_rows,
            title="Figure 4 (bottom): per-iteration energy on approximate parts",
        ),
        "",
    ]
    parts += savings_lines
    return "\n".join(parts)
