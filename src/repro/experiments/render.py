"""Monospace table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as a boxed monospace table.

    Args:
        headers: column names.
        rows: cell values; everything is str()-ed.
        title: optional caption printed above the table.

    Returns:
        The rendered table as a single string.
    """
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt_row(values: Sequence[str]) -> str:
        padded = [f" {v:<{w}} " for v, w in zip(values, widths)]
        return "|" + "|".join(padded) + "|"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells)
    lines.append(sep)
    return "\n".join(lines)


def format_number(value: float, digits: int = 4) -> str:
    """Compact numeric formatting for table cells."""
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}g}"
    return f"{value:.{digits}g}"


def ascii_scatter(
    points, labels, width: int = 60, height: int = 24, glyphs: str = "ox+*#@"
) -> str:
    """Render labelled 2-D points as an ASCII scatter plot.

    Args:
        points: ``(n, 2)`` coordinates.
        labels: integer label per point (selects the glyph).
        width / height: character-grid size.
        glyphs: one glyph per cluster index.

    Returns:
        A newline-joined character grid.
    """
    import numpy as np

    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"ascii_scatter needs (n, 2) points, got {points.shape}")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    grid = [[" "] * width for _ in range(height)]
    for (x, y), lab in zip(points, labels):
        col = int((x - lo[0]) / span[0] * (width - 1))
        row = int((y - lo[1]) / span[1] * (height - 1))
        grid[height - 1 - row][col] = glyphs[lab % len(glyphs)]
    return "\n".join("".join(row) for row in grid)
