"""Extension experiments beyond the paper's evaluation.

Three studies the paper's framing invites but does not run:

* :func:`pagerank_table` — a third application (graph mining / RMS),
  rendered in the Table 3/4 style;
* :func:`reconfiguration_cost_table` — a sweep over the per-switch
  energy, quantifying the paper's claim that reconfiguration overhead
  "can be safely ignored";
* :func:`seed_robustness_table` — the headline result (zero error +
  savings) across dataset seeds, showing it is not an artifact of one
  draw.
"""

from __future__ import annotations

from repro.apps.gmm import GaussianMixtureEM
from repro.apps.pagerank import PageRank
from repro.apps.qem import cluster_assignment_hamming
from repro.core.framework import ApproxIt
from repro.data.clusters import make_three_clusters
from repro.experiments.render import format_number, format_table


def pagerank_table(n_nodes: int = 150, seed: int = 3) -> str:
    """Extension Table E1: PageRank under every configuration."""
    web = PageRank.random_web(n_nodes=n_nodes, seed=seed)
    framework = ApproxIt(web)
    truth = framework.run_truth()

    rows = []
    for label in ("level1", "level2", "level3", "level4"):
        run = framework.run(strategy=f"static:{label}")
        rows.append(
            [
                label,
                "MAX_ITER" if run.hit_max_iter else run.iterations,
                f"{web.top_k_overlap(run.x, truth.x, k=10):.0%}",
                format_number(run.energy_relative_to(truth)),
            ]
        )
    for strategy in ("incremental", "adaptive"):
        run = framework.run(strategy=strategy)
        rows.append(
            [
                strategy,
                run.iterations,
                f"{web.top_k_overlap(run.x, truth.x, k=10):.0%}",
                format_number(run.energy_relative_to(truth)),
            ]
        )
    rows.append(["Truth", truth.iterations, "100%", "1"])
    return format_table(
        ["Configuration", "Iterations", "Top-10 overlap", "Energy"],
        rows,
        title=f"Table E1: PageRank on a {n_nodes}-node web (seed {seed})",
    )


def reconfiguration_cost_table(
    switch_energies: tuple[float, ...] = (0.0, 10.0, 100.0, 1000.0, 10000.0),
) -> str:
    """Extension Table E2: energy savings vs. per-switch cost."""
    method = GaussianMixtureEM.from_dataset(make_three_clusters())
    rows = []
    for cost in switch_energies:
        framework = ApproxIt(method, switch_energy=cost)
        truth = framework.run_truth()
        run = framework.run(strategy="incremental")
        rel = run.energy_relative_to(truth)
        rows.append(
            [
                format_number(cost),
                run.mode_switches,
                format_number(rel),
                f"{(1 - rel) * 100:+.1f} %",
            ]
        )
    return format_table(
        ["Switch energy", "Switches", "Energy (Truth=1)", "Savings"],
        rows,
        title="Table E2: reconfiguration-cost sensitivity (incremental, 3cluster)",
    )


def seed_robustness_table(seeds: tuple[int, ...] = (7, 17, 27, 37, 47)) -> str:
    """Extension Table E3: the headline result across dataset seeds."""
    rows = []
    for seed in seeds:
        dataset = make_three_clusters(seed=seed)
        method = GaussianMixtureEM.from_dataset(dataset)
        framework = ApproxIt(method)
        truth = framework.run_truth()
        for strategy in ("incremental", "adaptive"):
            run = framework.run(strategy=strategy)
            qem = cluster_assignment_hamming(
                method.assignments(run.x),
                method.assignments(truth.x),
                method.n_clusters,
            )
            rel = run.energy_relative_to(truth)
            rows.append(
                [
                    seed,
                    strategy,
                    truth.iterations,
                    run.iterations,
                    qem,
                    f"{(1 - rel) * 100:+.1f} %",
                ]
            )
    return format_table(
        ["Seed", "Strategy", "Truth iters", "Iters", "QEM", "Savings"],
        rows,
        title="Table E3: zero-error + savings across 3cluster seeds",
    )
