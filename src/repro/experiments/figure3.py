"""Figure 3: GMM clustering quality under single-mode approximation.

The paper shows scatter plots of the ``3cluster`` dataset as clustered
by the Truth run and by each single-mode configuration, with ``level1``
collapsing the three clusters into two.  Offline we render the same
content as ASCII scatters (one glyph per cluster) plus the cluster
cardinalities, which make the collapse quantitatively visible.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.render import ascii_scatter
from repro.experiments.runner import SINGLE_MODES, run_gmm_experiment


def effective_clusters(assignments: np.ndarray, n_clusters: int) -> int:
    """Number of clusters that actually own samples."""
    counts = np.bincount(assignments, minlength=n_clusters)
    return int((counts > 0).sum())


def figure3(dataset_key: str = "3cluster") -> str:
    """Render the Figure-3 panel for one GMM dataset."""
    result = run_gmm_experiment(dataset_key)
    method = result.framework.method
    points = method.points

    panels = []
    for label in ["truth"] + list(reversed(SINGLE_MODES)):
        run = result.run_of(label)
        assignments = method.assignments(run.x)
        counts = np.bincount(assignments, minlength=method.n_clusters)
        k_eff = effective_clusters(assignments, method.n_clusters)
        name = "Truth" if label == "truth" else label
        header = (
            f"--- {name}: {k_eff}/{method.n_clusters} clusters populated, "
            f"sizes {counts.tolist()}, QEM {int(result.qem[label])} ---"
        )
        panels.append(header)
        panels.append(ascii_scatter(points[:, :2], assignments))
        panels.append("")
    return "\n".join(
        [f"Figure 3: single-mode clustering of {result.display_name}", ""] + panels
    )
