"""Pluggable kernel backends (see :mod:`repro.backends.base`).

Importing this package registers the always-available NumPy reference
backend and, when Numba is installed, the optional JIT backend.
"""

from __future__ import annotations

from repro.backends.base import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.backends import numpy_backend

register_backend(numpy_backend.build())

try:
    from repro.backends import numba_backend

    register_backend(numba_backend.build())
except ImportError:  # numba not installed: the registry simply omits it
    pass

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
]
