"""Kernel backend protocol and registry.

A :class:`KernelBackend` is the pluggable execution substrate behind
the engine's kernel interface: every elementary operation the datapath
performs — adder dispatch, fixed-point encode/decode, and the fused
in-range kernels the program-replay fast paths are built on — routes
through the engine's backend object.  The NumPy reference backend
(:mod:`repro.backends.numpy_backend`) is today's code refactored behind
the interface with zero behavior change; alternative backends (the
optional Numba backend, :mod:`repro.backends.numba_backend`) may swap
in specialized kernels as long as they stay **bit-identical** to the
reference — the bit-serial ``adders.reference`` suite is the
cross-backend oracle (``tests/hardware/test_backend_equivalence.py``).

Selection precedence (resolved once at engine construction):

1. an explicit backend (``ApproxIt(backend=...)`` / CLI ``--backend``);
2. the ``$REPRO_BACKEND`` environment variable;
3. the ``"numpy"`` reference backend.

The resolved backend's :attr:`~KernelBackend.name` rides in the solver
service's content-address key (see
:meth:`repro.service.requests.SolveRequest.payload`), so cached runs
stay bit-identical per backend.
"""

from __future__ import annotations

import os

import numpy as np

try:  # SciPy is a declared dependency, but the kernels keep a pure-
    # NumPy fallback so a stripped environment still runs correctly.
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV = "REPRO_BACKEND"

#: The always-available reference backend.
DEFAULT_BACKEND = "numpy"


class KernelBackend:
    """Execution substrate for the engine's elementary kernels.

    The base class *is* the NumPy reference semantics: every method's
    default implementation delegates to the adder model / fixed-point
    format exactly as the pre-backend engine did, so a subclass only
    overrides the kernels it specializes and inherits reference
    behavior (and hence bit-exactness) everywhere else.

    Two method groups:

    * **primitive dispatch** (:meth:`add_signed`, :meth:`add_unsigned`,
      :meth:`encode`, :meth:`decode`) — always-correct entry points the
      interpreted path calls for every operation;
    * **fused in-range kernels** (:meth:`add_words_inrange`,
      :meth:`sub_words_inrange`, :meth:`reduce_inrange`,
      :meth:`product_reduce_words`) — called only by program replay
      *after* the caller has proved the operation cannot leave the
      representable range (exact adder, saturating format, interval
      proof), where the masked/clipped reference computation provably
      collapses to plain integer arithmetic.  Implementations must be
      bit-identical to the reference under those preconditions.

    Attributes:
        name: registry key (also the value carried in content-address
            keys and ``BENCH_perf.json`` entries).
        version: substrate version string for provenance (e.g. the
            NumPy or Numba release).
    """

    name: str = "abstract"
    version: str = "0"

    # ------------------------------------------------------------------
    # Primitive dispatch
    # ------------------------------------------------------------------
    def add_signed(self, adder, qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
        """One elementary addition through ``adder`` (two's-complement,
        wraparound overflow) — the single adder entry point of
        :meth:`repro.arith.engine.ApproxEngine._add_words`."""
        return adder.add_signed(qa, qb)

    def add_unsigned(self, adder, ua: np.ndarray, ub: np.ndarray) -> np.ndarray:
        """Unsigned ``width``-bit addition through ``adder`` (the
        surface the bit-serial equivalence oracle exercises)."""
        return adder.add_unsigned(ua, ub)

    def encode(
        self, fmt, values: np.ndarray, *, assume_finite: bool = False
    ) -> np.ndarray:
        """Quantize floats to fixed-point words (``int64``)."""
        return fmt.encode(values, assume_finite=assume_finite)

    def decode(self, fmt, words: np.ndarray) -> np.ndarray:
        """Fixed-point words back to floats."""
        return fmt.decode(words)

    # ------------------------------------------------------------------
    # Fused in-range kernels (caller supplies the range proof)
    # ------------------------------------------------------------------
    def add_words_inrange(self, qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
        """Exact add of words whose sum provably stays in range: the
        masked two's-complement add collapses to plain ``+``."""
        return np.add(qa, qb)

    def sub_words_inrange(self, qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
        """Exact subtract under an in-range (and no-negation-clamp)
        proof: negation plus masked add collapses to plain ``-``."""
        return np.subtract(qa, qb)

    def reduce_inrange(self, q: np.ndarray, axis: int = 0) -> np.ndarray:
        """Tree-reduce along ``axis`` when every partial sum provably
        stays in range: in-range exact integer addition is associative,
        so a flat fold is bit-identical to the balanced tree."""
        return np.add.reduce(q, axis=axis)

    def product_reduce_words(
        self,
        a: np.ndarray,
        b: np.ndarray,
        scale: float,
        axis: int,
        bufs: dict,
    ) -> np.ndarray:
        """Fused product → encode → in-range reduce.

        Computes ``reduce(rint((a * b) * scale), axis)`` as int64 words
        with the encode clip *skipped* — callable only when the caller
        proved every encoded word and every partial sum in range *and*
        below ``2**53`` (see ``repro.arith.program._fused_product_ok``).
        ``a * b``
        broadcasts; ``bufs`` is per-call-site scratch storage keyed by
        broadcast shape, reused across iterations so the hot loop
        allocates only the reduced output.

        Bit-exactness argument: the reference path computes
        ``rint(product * scale).astype(int64)`` then clips then
        tree-reduces; with the clip proven a no-op and the tree proven
        in-range, the same float ops followed by a flat fold produce
        the identical words.  The fold itself runs in the float buffer:
        after ``rint`` every element is integer-valued, and the
        caller's ``n*W < 2**53`` proof bounds every partial sum (under
        *any* association, so NumPy's pairwise float summation is
        covered) below the float64 integer-exact range — the float
        reduce is therefore the exact integer sum, and the O(rows)
        result is the only value cast, skipping the O(rows*cols)
        ``int64`` conversion pass entirely.
        """
        shape = np.broadcast_shapes(a.shape, b.shape)
        fbuf = bufs.get(shape)
        if fbuf is None:
            fbuf = bufs[shape] = np.empty(shape, dtype=np.float64)
        np.multiply(a, b, out=fbuf)
        fbuf *= scale
        np.rint(fbuf, out=fbuf)
        return np.add.reduce(fbuf, axis=axis).astype(np.int64)

    def csr_matvec_words(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        x: np.ndarray,
        scale: float,
        bufs: dict,
    ) -> np.ndarray:
        """Fused sparse product → encode → per-row in-range reduce.

        The CSR sibling of :meth:`product_reduce_words`: computes, per
        matrix row, ``sum_k rint((data[k] * x[indices[k]]) * scale)``
        as int64 words with the encode clip *skipped* — callable only
        under the caller's ``nnz_max``-specialized proof (``W <= hi``,
        ``nnz_max * W <= hi``, ``nnz_max * W < 2**53`` — see
        ``repro.arith.program._fused_product_ok``), which bounds every
        partial sum of every row's segment under *any* association.
        The fold therefore runs in the float buffer (every element is
        integer-valued after ``rint`` and every partial sum stays in
        float64's integer-exact range) and only the O(rows) result is
        cast.  ``x`` is ``(n,)`` for one lane or ``(B, n)``
        lane-stacked; the result is ``(rows,)`` / ``(B, rows)`` with
        empty rows emitting the zero word.  ``bufs`` is per-call-site
        scratch (row-partition geometry plus the product buffer),
        reused across iterations.
        """
        rows = indptr.shape[0] - 1
        batched = x.ndim == 2
        if data.size == 0:
            shape = (x.shape[0], rows) if batched else (rows,)
            return np.zeros(shape, dtype=np.int64)
        shape = (x.shape[0], data.shape[0]) if batched else data.shape
        fbuf = bufs.get(shape)
        if fbuf is None:
            fbuf = bufs[shape] = np.empty(shape, dtype=np.float64)
        if batched:
            np.multiply(data[np.newaxis, :], x[:, indices], out=fbuf)
        else:
            np.multiply(data, x[indices], out=fbuf)
        fbuf *= scale
        np.rint(fbuf, out=fbuf)
        if _scipy_sparse is not None:
            # Segment-sum as one C-level CSR matvec against a cached
            # (rows, nnz) structure-only selector: row i's segment sums
            # fbuf[indptr[i]:indptr[i+1]].  The in-range proof covers
            # any association, so SciPy's sequential per-row fold is
            # the exact integer sum, empty rows included.
            sel = bufs.get("csr_segsum")
            if sel is None:
                sel = bufs["csr_segsum"] = _scipy_sparse.csr_matrix(
                    (
                        np.ones(data.shape[0], dtype=np.float64),
                        np.arange(data.shape[0], dtype=np.int64),
                        indptr,
                    ),
                    shape=(rows, data.shape[0]),
                )
            if batched:
                return (sel @ fbuf.T).T.astype(np.int64)
            return (sel @ fbuf).astype(np.int64)
        geom = bufs.get("csr_geom")
        if geom is None:
            nz = indptr[:-1] < indptr[1:]
            # Row starts of the non-empty rows partition the data array
            # exactly (empty rows occupy no space), so one reduceat
            # yields every non-empty row's segment sum.
            starts = np.ascontiguousarray(indptr[:-1][nz])
            geom = bufs["csr_geom"] = (nz, bool(nz.all()), starts)
        nz, all_full, starts = geom
        sums = np.add.reduceat(fbuf, starts, axis=-1).astype(np.int64)
        if all_full:
            return sums
        shape = (x.shape[0], rows) if batched else (rows,)
        out = np.zeros(shape, dtype=np.int64)
        out[..., nz] = sums
        return out

    def scale_encode_inrange(
        self,
        arr: np.ndarray,
        factor: float,
        scale: float,
        bufs: dict,
    ) -> np.ndarray:
        """Fused ``encode(factor * arr)`` with the clip *skipped*.

        Computes ``rint((arr * factor) * scale)`` as int64 words —
        callable only when the caller proved every encoded word in
        range (the ``scale_add`` replay's peak-bound proof), where the
        reference encode's finiteness scan and clip are both no-ops.
        ``bufs`` is per-call-site scratch keyed by shape, reused across
        iterations; the returned array is one of those buffers, so the
        caller must consume it before the next call.
        """
        pair = bufs.get(arr.shape)
        if pair is None:
            pair = (
                np.empty(arr.shape, dtype=np.float64),
                np.empty(arr.shape, dtype=np.int64),
            )
            bufs[arr.shape] = pair
        fbuf, qbuf = pair
        np.multiply(arr, factor, out=fbuf)
        fbuf *= scale
        np.rint(fbuf, out=fbuf)
        np.copyto(qbuf, fbuf, casting="unsafe")
        return qbuf

    # ------------------------------------------------------------------
    # Chain compilation hook
    # ------------------------------------------------------------------
    def compile_chain(self, steps) -> object | None:
        """Optionally fuse a dataflow chain of compiled steps into one
        backend-specific callable ``fn(engine, head_args) -> [outputs]``.

        ``None`` (the default) makes the replay executor run the chain
        step-by-step through the generic speculative harness — still
        one Python entry per chain head, with tail dispatches served
        from memoized results.  A backend may return a fused callable
        for patterns it recognizes; it must be bit-identical to the
        stepwise execution.
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name} ({self.version})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, version={self.version!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Register a backend instance under its :attr:`~KernelBackend.name`.

    Raises:
        ValueError: on a duplicate name unless ``replace=True``.
    """
    name = backend.name
    if not name or name == "abstract":
        raise ValueError(f"backend needs a concrete name, got {name!r}")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> KernelBackend:
    """The registered backend named ``name``.

    Raises:
        ValueError: for an unknown name (lists what *is* available, so
            a typo or a missing optional dependency fails loudly).
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{list(available_backends())}"
        )
    return backend


def resolve_backend_name(spec: "str | KernelBackend | None" = None) -> str:
    """The effective backend name for ``spec``.

    Precedence: explicit ``spec`` > ``$REPRO_BACKEND`` >
    :data:`DEFAULT_BACKEND`.  The name is validated against the
    registry, so an env var naming an unavailable backend fails loudly
    instead of silently running the default.
    """
    if isinstance(spec, KernelBackend):
        return get_backend(spec.name).name if spec.name in _BACKENDS else spec.name
    name = spec if spec is not None else os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    return get_backend(name).name


def resolve_backend(spec: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve ``spec`` to a backend instance (see
    :func:`resolve_backend_name` for the precedence)."""
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    return get_backend(spec)
