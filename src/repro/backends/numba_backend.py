"""Optional Numba backend (guarded import, auto-registered when present).

Specializes the hottest replay kernels as JIT-compiled single-pass
loops — the fused product → encode → reduce of ``matvec`` /
``weighted_sum`` replay runs as one loop nest instead of five
vectorized passes, and the exact adder's mask/unmask sandwich collapses
to one expression per element.  Everything it does not specialize
(approximate adder families, checked encodes) inherits the NumPy
reference implementation, so bit-exactness against the
``adders.reference`` oracle holds by construction for the inherited
paths and is asserted by ``tests/hardware/test_backend_equivalence.py``
for the specialized ones.

Import is guarded: when Numba is not installed this module still
imports cleanly, :data:`HAVE_NUMBA` is ``False`` and :func:`build`
raises ``ImportError`` — the package registry simply skips the
registration and ``--backend numba`` fails loudly with the list of
backends that *are* available.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common CI container case
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _exact_add_signed(qa, qb, width):
        """Masked two's-complement add, one pass: identical to
        ``to_signed((to_unsigned(a) + to_unsigned(b)) & mask)``."""
        mask = np.int64((np.int64(1) << np.int64(width)) - np.int64(1))
        sign = np.int64(1) << np.int64(width - 1)
        out = np.empty(qa.shape, dtype=np.int64)
        flat_a = qa.ravel()
        flat_b = qb.ravel()
        flat_o = out.ravel()
        for i in range(flat_a.size):
            s = ((flat_a[i] & mask) + (flat_b[i] & mask)) & mask
            flat_o[i] = (s ^ sign) - sign
        return out

    @numba.njit(cache=True)
    def _matvec_words(mat, vec, scale):
        """Fused rows of ``rint(mat[i, j] * vec[j] * scale)`` summed
        exactly — valid only under the caller's no-clip/in-range proof."""
        rows, cols = mat.shape
        out = np.empty(rows, dtype=np.int64)
        for i in range(rows):
            acc = np.int64(0)
            for j in range(cols):
                acc += np.int64(np.rint(mat[i, j] * vec[j] * scale))
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def _batched_matvec_words(mat, xs, scale):
        """Per-lane fused matvec words: ``(L, rows)`` from a shared
        ``(rows, cols)`` matrix and an ``(L, cols)`` iterate stack."""
        lanes = xs.shape[0]
        rows, cols = mat.shape
        out = np.empty((lanes, rows), dtype=np.int64)
        for la in range(lanes):
            for i in range(rows):
                acc = np.int64(0)
                for j in range(cols):
                    acc += np.int64(np.rint(mat[i, j] * xs[la, j] * scale))
                out[la, i] = acc
        return out

    @numba.njit(cache=True)
    def _csr_matvec_words(data, indices, indptr, x, scale):
        """Fused CSR rows of ``rint(data[k] * x[indices[k]] * scale)``
        summed exactly — valid only under the caller's nnz_max-bound
        no-clip/in-range proof; empty rows emit the zero word."""
        rows = indptr.shape[0] - 1
        out = np.empty(rows, dtype=np.int64)
        for i in range(rows):
            acc = np.int64(0)
            for k in range(indptr[i], indptr[i + 1]):
                acc += np.int64(np.rint(data[k] * x[indices[k]] * scale))
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def _batched_csr_matvec_words(data, indices, indptr, xs, scale):
        """Per-lane fused CSR matvec words: ``(L, rows)`` from a shared
        CSR matrix and an ``(L, cols)`` iterate stack."""
        lanes = xs.shape[0]
        rows = indptr.shape[0] - 1
        out = np.empty((lanes, rows), dtype=np.int64)
        for la in range(lanes):
            for i in range(rows):
                acc = np.int64(0)
                for k in range(indptr[i], indptr[i + 1]):
                    acc += np.int64(np.rint(data[k] * xs[la, indices[k]] * scale))
                out[la, i] = acc
        return out

    @numba.njit(cache=True)
    def _weighted_words(w, pts, scale):
        """Fused ``sum_i rint(w[i] * pts[i, :] * scale)`` (axis-0
        reduce of the weighted-sum product)."""
        n, d = pts.shape
        out = np.zeros(d, dtype=np.int64)
        for i in range(n):
            wi = w[i]
            for j in range(d):
                out[j] += np.int64(np.rint(wi * pts[i, j] * scale))
        return out


class NumbaBackend(KernelBackend):
    """JIT-specialized backend; inherits reference semantics elsewhere."""

    name = "numba"
    version = numba.__version__ if HAVE_NUMBA else "unavailable"

    def add_signed(self, adder, qa, qb):
        if adder.is_exact and type(adder).__name__ == "ExactAdder":
            qa = np.ascontiguousarray(qa, dtype=np.int64)
            qb = np.ascontiguousarray(qb, dtype=np.int64)
            if qa.shape == qb.shape:
                return _exact_add_signed(qa, qb, adder.width)
        return adder.add_signed(qa, qb)

    def product_reduce_words(self, a, b, scale, axis, bufs):
        # matvec: (rows, cols) x (1, cols) reduced along the last axis.
        if a.ndim == 2 and b.ndim == 2 and b.shape[0] == 1 and axis == 1:
            return _matvec_words(
                np.ascontiguousarray(a), np.ascontiguousarray(b[0]), scale
            )
        # batched matvec: (1, rows, cols) x (L, 1, cols), axis=2.
        if (
            a.ndim == 3
            and b.ndim == 3
            and a.shape[0] == 1
            and b.shape[1] == 1
            and axis == 2
        ):
            return _batched_matvec_words(
                np.ascontiguousarray(a[0]),
                np.ascontiguousarray(b[:, 0, :]),
                scale,
            )
        # weighted_sum: (n, 1) weights x (n, d) points, axis=0.
        if a.ndim == 2 and a.shape[1] == 1 and b.ndim == 2 and axis == 0:
            return _weighted_words(
                np.ascontiguousarray(a[:, 0]), np.ascontiguousarray(b), scale
            )
        return super().product_reduce_words(a, b, scale, axis, bufs)

    def csr_matvec_words(self, data, indices, indptr, x, scale, bufs):
        if data.size:
            data = np.ascontiguousarray(data)
            indices = np.ascontiguousarray(indices)
            indptr = np.ascontiguousarray(indptr)
            if x.ndim == 1:
                return _csr_matvec_words(
                    data, indices, indptr, np.ascontiguousarray(x), scale
                )
            if x.ndim == 2:
                return _batched_csr_matvec_words(
                    data, indices, indptr, np.ascontiguousarray(x), scale
                )
        return super().csr_matvec_words(data, indices, indptr, x, scale, bufs)


def build() -> NumbaBackend:
    """Factory used by the package registry.

    Raises:
        ImportError: when Numba is not installed.
    """
    if not HAVE_NUMBA:
        raise ImportError("numba is not installed; the numba backend is unavailable")
    return NumbaBackend()
