"""The NumPy reference backend.

This is the engine's historical execution substrate refactored behind
the :class:`~repro.backends.base.KernelBackend` interface with zero
behavior change: every primitive delegates to the adder model's own
vectorized SWAR kernels (:mod:`repro.hardware.bitops`) and to
:class:`~repro.arith.fixed.FixedPointFormat`, and the fused in-range
kernels are the ``np.add`` / ``np.add.reduce`` collapses the replay
fast paths already used.  Every other backend is validated bit-for-bit
against this one.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Reference backend: the base-class semantics, named and versioned."""

    name = "numpy"
    version = np.__version__


def build() -> NumpyBackend:
    """Factory used by the package registry."""
    return NumpyBackend()
