"""ApproxIt: an approximate computing framework for iterative methods.

This package is a from-scratch reproduction of

    Q. Zhang, F. Yuan, R. Ye and Q. Xu,
    "ApproxIt: An Approximate Computing Framework for Iterative Methods",
    Proc. IEEE/ACM Design Automation Conference (DAC), 2014.

It contains every layer the paper builds on:

``repro.hardware``
    Bit-accurate software models of approximate adders (LOA, ETA-II, ACA,
    GeAr, truncation) and multipliers, an energy model, and error-metric
    characterization (WCE / ER / ME / MED / MRED).

``repro.arith``
    A Q-format fixed-point datapath (:class:`~repro.arith.FixedPointFormat`)
    and the :class:`~repro.arith.ApproxEngine` that routes additions through
    a chosen adder model while accounting energy per operation.

``repro.solvers``
    A library of iterative methods exposing the paper's direction / update
    split: gradient descent, Newton, conjugate gradient, Jacobi,
    Gauss-Seidel, SOR and iterative least squares.

``repro.apps``
    The paper's benchmark applications: Gaussian mixture models fitted by
    EM, autoregression fitted by gradient-descent least squares, and
    K-means (used by the PID baseline from the motivation section).

``repro.data``
    Seeded synthetic datasets matching Table 2 of the paper (cluster
    mixtures and financial-index time series).

``repro.core``
    The ApproxIt contribution itself: the Definition-1 quality-error
    estimator, offline characterization, the incremental and adaptive
    angle-based reconfiguration strategies, convergence criteria, and the
    Chippa-style PID dynamic-effort-scaling baseline.

``repro.experiments``
    Regenerators for every table and figure in the paper's evaluation.

Quickstart
----------
>>> from repro import ApproxIt, default_mode_bank
>>> from repro.apps import GaussianMixtureEM
>>> from repro.data import make_three_clusters
>>> dataset = make_three_clusters(seed=7)
>>> method = GaussianMixtureEM.from_dataset(dataset)
>>> framework = ApproxIt(method, default_mode_bank())
>>> result = framework.run(strategy="adaptive")
>>> result.quality_error  # doctest: +SKIP
0.0
"""

from repro._version import __version__
from repro.arith import ApproxEngine, FixedPointFormat
from repro.arith.modes import ApproxMode, ModeBank, default_mode_bank
from repro.core.framework import ApproxIt, RunResult

__all__ = [
    "__version__",
    "ApproxEngine",
    "ApproxIt",
    "ApproxMode",
    "FixedPointFormat",
    "ModeBank",
    "RunResult",
    "default_mode_bank",
]
