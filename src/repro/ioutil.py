"""Durable file-write primitives shared by every on-disk store.

Three subsystems persist state that other processes read back — the
content-addressed characterization cache
(:class:`repro.core.characterize.CharacterizationCache`), the JSONL
trace files (:mod:`repro.obs.io`) and the service run store
(:class:`repro.service.store.RunStore`).  All of them need the same
discipline: a reader racing a writer (or a writer killed mid-write)
must never observe a half-written file.  :func:`atomic_write_text` is
that discipline in one place — write to a temp file in the destination
directory, flush (and by default fsync) it, then ``os.replace`` onto
the final name.  ``os.replace`` is atomic on POSIX and Windows, so the
destination always holds either the previous complete content or the
new complete content, never a mixture or a prefix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    fsync: bool = True,
    encoding: str = "utf-8",
) -> Path:
    """Atomically replace ``path``'s content with ``text``.

    The bytes land in a temp file next to the destination (same
    directory, so the final rename cannot cross filesystems) and are
    flushed — with ``fsync=True`` (the default) all the way to disk —
    *before* the rename.  A crash at any point leaves either the old
    file or the new one; the temp file is unlinked on failure.  Parent
    directories are created as needed.

    Args:
        path: destination file.
        text: full new content.
        fsync: force the data to stable storage before the rename.
            Without it a power loss shortly after the rename can leave
            an empty (but never half-written) file on some filesystems.
        encoding: text encoding of the file.

    Returns:
        The destination path.

    Raises:
        OSError: when the directory cannot be created or the write /
            rename fails; callers that must not fail on persistence
            errors (caches) catch this and degrade.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
